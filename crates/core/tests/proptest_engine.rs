//! Property tests for the engine: on random type (1) formulas over random
//! fixture lists, the table-based engine must agree with direct composition
//! of the list algorithms.

use proptest::prelude::*;
use simvid_core::{
    list, AtomicProvider, Engine, SeqContext, SimilarityList, SimilarityTable, ValueTable,
};
use simvid_htl::{AtomicUnit, AttrFn, Formula};
use simvid_model::VideoBuilder;

const N: usize = 48;
const THETA: f64 = 0.5;

/// A random type (1) formula over atomic predicates `a0()..a3()`, paired
/// with the oracle evaluation as a function of the four lists.
#[derive(Debug, Clone)]
enum F {
    Atom(usize),
    And(Box<F>, Box<F>),
    Until(Box<F>, Box<F>),
    Next(Box<F>),
    Eventually(Box<F>),
}

impl F {
    fn to_formula(&self) -> Formula {
        match self {
            F::Atom(i) => Formula::rel(format!("a{i}"), Vec::<String>::new()),
            F::And(a, b) => a.to_formula().and(b.to_formula()),
            F::Until(a, b) => a.to_formula().until(b.to_formula()),
            F::Next(a) => a.to_formula().next(),
            F::Eventually(a) => a.to_formula().eventually(),
        }
    }

    fn oracle(&self, lists: &[SimilarityList]) -> SimilarityList {
        match self {
            F::Atom(i) => lists[*i].clone(),
            F::And(a, b) => list::and(&a.oracle(lists), &b.oracle(lists)),
            F::Until(a, b) => list::until(&a.oracle(lists), &b.oracle(lists), THETA),
            F::Next(a) => list::next(&a.oracle(lists)),
            F::Eventually(a) => list::eventually(&a.oracle(lists)),
        }
    }
}

fn formula_strategy(depth: u32) -> BoxedStrategy<F> {
    if depth == 0 {
        return (0usize..4).prop_map(F::Atom).boxed();
    }
    let sub = move || formula_strategy(depth - 1);
    prop_oneof![
        2 => (0usize..4).prop_map(F::Atom),
        2 => (sub(), sub()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
        2 => (sub(), sub()).prop_map(|(a, b)| F::Until(Box::new(a), Box::new(b))),
        1 => sub().prop_map(|a| F::Next(Box::new(a))),
        1 => sub().prop_map(|a| F::Eventually(Box::new(a))),
    ]
    .boxed()
}

fn dense(max: f64) -> impl Strategy<Value = Vec<f64>> {
    let pool = vec![0.0, 0.0, 0.3 * max, 0.6 * max, max];
    prop::collection::vec(prop::sample::select(pool), N)
}

/// Serves fixed lists for `a0()..a3()`, window-sliced like a real
/// provider. A pure unit may be a *conjunction* of predicates (the engine
/// hands maximal non-temporal subtrees to the picture system whole), so
/// the provider folds `and` over the unit's structure — exactly the
/// weighted-conjunct sum the real picture system computes.
struct Lists(Vec<SimilarityList>);

impl Lists {
    fn eval_pure(&self, f: &Formula) -> SimilarityList {
        match f {
            Formula::And(a, b) => list::and(&self.eval_pure(a), &self.eval_pure(b)),
            Formula::Atom(simvid_htl::Atom::Rel { name, .. }) => {
                let idx: usize = name[1..].parse().expect("a<i> predicate");
                self.0[idx].clone()
            }
            other => panic!("unexpected pure unit {other}"),
        }
    }
}

impl AtomicProvider for Lists {
    fn atomic_table(&self, unit: &AtomicUnit, ctx: SeqContext) -> std::sync::Arc<SimilarityTable> {
        std::sync::Arc::new(SimilarityTable::from_list(
            self.eval_pure(&unit.formula)
                .slice_window(ctx.lo + 1, ctx.hi),
        ))
    }

    fn atomic_max(&self, unit: &AtomicUnit) -> f64 {
        self.eval_pure(&unit.formula).max()
    }

    fn value_table(&self, _f: &AttrFn, _c: SeqContext) -> ValueTable {
        ValueTable::default()
    }
}

fn flat_video(n: usize) -> simvid_model::VideoTree {
    let mut b = VideoBuilder::new("flat");
    for i in 0..n {
        b.leaf(format!("s{i}"));
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn engine_matches_list_algebra_on_type1(
        f in formula_strategy(3),
        d0 in dense(1.0),
        d1 in dense(2.0),
        d2 in dense(5.0),
        d3 in dense(0.5),
    ) {
        let lists = vec![
            SimilarityList::from_dense(&d0, 1.0),
            SimilarityList::from_dense(&d1, 2.0),
            SimilarityList::from_dense(&d2, 5.0),
            SimilarityList::from_dense(&d3, 0.5),
        ];
        let provider = Lists(lists.clone());
        let tree = flat_video(N);
        let engine = Engine::new(&provider, &tree);
        let formula = f.to_formula();
        let got = engine.eval_closed_at_level(&formula, 1).unwrap();
        let want = f.oracle(&lists);
        let (a, b) = (got.to_dense(N), want.to_dense(N));
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                (x - y).abs() < 1e-9,
                "`{}` at {}: engine {} vs oracle {}",
                formula, i + 1, x, y
            );
        }
        prop_assert!((got.max() - want.max()).abs() < 1e-9);
        got.check_invariants().unwrap();
    }

    #[test]
    fn formula_max_matches_oracle_max(f in formula_strategy(3)) {
        let lists = vec![
            SimilarityList::empty(1.0),
            SimilarityList::empty(2.0),
            SimilarityList::empty(5.0),
            SimilarityList::empty(0.5),
        ];
        let provider = Lists(lists.clone());
        let tree = flat_video(4);
        let engine = Engine::new(&provider, &tree);
        let formula = f.to_formula();
        prop_assert!((engine.formula_max(&formula) - f.oracle(&lists).max()).abs() < 1e-9);
    }
}
