//! Property tests: every list algorithm agrees with a brute-force oracle on
//! dense arrays, and preserves the canonical-form invariants.

use proptest::prelude::*;
use simvid_core::{list, SimilarityList};

const N: usize = 64;

/// Random dense similarity array: values from a small pool so runs form.
fn dense(max: f64) -> impl Strategy<Value = Vec<f64>> {
    let pool = vec![0.0, 0.0, 0.0, 0.2 * max, 0.5 * max, 0.8 * max, max];
    prop::collection::vec(prop::sample::select(pool), N)
}

fn approx(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

// ---- oracles -------------------------------------------------------------

fn oracle_and(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn oracle_max(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x.max(*y)).collect()
}

fn oracle_next(a: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len()];
    let n = a.len().saturating_sub(1);
    out[..n].copy_from_slice(&a[1..=n]);
    out
}

fn oracle_eventually(a: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    for i in (0..a.len().saturating_sub(1)).rev() {
        out[i] = out[i].max(out[i + 1]);
    }
    out
}

/// Direct transcription of the similarity semantics of `g until h`:
/// value(i) = max over u'' = i, or u'' > i with frac_g ≥ θ on [i, u''−1].
fn oracle_until(g: &[f64], gmax: f64, h: &[f64], theta: f64) -> Vec<f64> {
    let cut = theta * gmax - 1e-12;
    let n = g.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut best = h[i];
        let mut k = i;
        // A position absent from the list has similarity zero and never
        // counts as satisfying g, even at threshold zero.
        while k < n - 1 && g[k] > 0.0 && g[k] >= cut {
            k += 1;
            best = best.max(h[k]);
        }
        out[i] = best;
    }
    out
}

// ---- properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn and_matches_oracle(a in dense(2.0), b in dense(3.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let lb = SimilarityList::from_dense(&b, 3.0);
        let out = list::and(&la, &lb);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_and(&a, &b)));
        prop_assert_eq!(out.max(), 5.0);
    }

    #[test]
    fn and_is_commutative(a in dense(2.0), b in dense(3.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let lb = SimilarityList::from_dense(&b, 3.0);
        prop_assert_eq!(list::and(&la, &lb).to_tuples(), list::and(&lb, &la).to_tuples());
    }

    #[test]
    fn max_merge_matches_oracle(a in dense(4.0), b in dense(4.0)) {
        let la = SimilarityList::from_dense(&a, 4.0);
        let lb = SimilarityList::from_dense(&b, 4.0);
        let out = list::max_merge(&la, &lb);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_max(&a, &b)));
    }

    #[test]
    fn max_merge_many_matches_pairwise_fold(
        arrays in prop::collection::vec(dense(4.0), 1..6)
    ) {
        let lists: Vec<SimilarityList> =
            arrays.iter().map(|a| SimilarityList::from_dense(a, 4.0)).collect();
        let dc = list::max_merge_many(&lists);
        let mut expect = vec![0.0; N];
        for a in &arrays {
            expect = oracle_max(&expect, a);
        }
        prop_assert!(approx(&dc.to_dense(N), &expect));
    }

    #[test]
    fn next_matches_oracle(a in dense(2.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let out = list::next(&la);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_next(&a)));
    }

    #[test]
    fn eventually_matches_oracle(a in dense(2.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let out = list::eventually(&la);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_eventually(&a)));
    }

    #[test]
    fn until_matches_oracle(
        g in dense(1.0),
        h in dense(5.0),
        theta in prop::sample::select(vec![0.0, 0.3, 0.5, 0.9]),
    ) {
        let lg = SimilarityList::from_dense(&g, 1.0);
        let lh = SimilarityList::from_dense(&h, 5.0);
        let out = list::until(&lg, &lh, theta);
        out.check_invariants().unwrap();
        prop_assert!(
            approx(&out.to_dense(N), &oracle_until(&g, 1.0, &h, theta)),
            "g={:?} h={:?} theta={} got={:?} want={:?}",
            g, h, theta, out.to_dense(N), oracle_until(&g, 1.0, &h, theta)
        );
        prop_assert_eq!(out.max(), 5.0);
    }

    #[test]
    fn eventually_equals_until_true(h in dense(5.0)) {
        // eventually h == (true until h) when `true` covers every position.
        let lh = SimilarityList::from_dense(&h, 5.0);
        let tt = SimilarityList::from_tuples(vec![(1, N as u32, 1.0)], 1.0).unwrap();
        let via_until = list::until(&tt, &lh, 0.5);
        let direct = list::eventually(&lh);
        prop_assert!(approx(&via_until.to_dense(N), &direct.to_dense(N)));
    }

    #[test]
    fn dense_round_trip(a in dense(3.0)) {
        let l = SimilarityList::from_dense(&a, 3.0);
        l.check_invariants().unwrap();
        prop_assert!(approx(&l.to_dense(N), &a));
    }

    #[test]
    fn slice_unslice_round_trip(a in dense(2.0), lo in 1u32..30, len in 1u32..30) {
        let l = SimilarityList::from_dense(&a, 2.0);
        let hi = (lo + len).min(N as u32);
        let sliced = l.slice_window(lo, hi);
        sliced.check_invariants().unwrap();
        let back = sliced.unslice_window(lo);
        // The round trip equals the original restricted to [lo, hi].
        let mut expect = vec![0.0; N];
        for (i, item) in expect.iter_mut().enumerate() {
            let pos = i as u32 + 1;
            if pos >= lo && pos <= hi {
                *item = a[i];
            }
        }
        prop_assert!(approx(&back.to_dense(N), &expect));
    }

    #[test]
    fn until_value_never_below_h(g in dense(1.0), h in dense(5.0)) {
        // u'' = u is always allowed, so the output dominates h point-wise.
        let lg = SimilarityList::from_dense(&g, 1.0);
        let lh = SimilarityList::from_dense(&h, 5.0);
        let out = list::until(&lg, &lh, 0.5).to_dense(N);
        for (o, hv) in out.iter().zip(&h) {
            prop_assert!(o >= hv);
        }
    }

    #[test]
    fn coalesce_preserves_semantics(a in dense(2.0)) {
        let l = SimilarityList::from_dense(&a, 2.0);
        let c = l.clone().coalesce();
        c.check_invariants().unwrap();
        prop_assert!(approx(&c.to_dense(N), &l.to_dense(N)));
        prop_assert!(c.len() <= l.len());
    }
}

// ---- galloping-kernel equivalence ----------------------------------------
//
// The binary merges dispatch to galloping (exponential-search) kernels when
// one operand has at least 16× the entries of the other. These properties
// drive that dispatch through the public API with *skewed* inputs — empty,
// single-entry, ~1:100, and 1:1 operands over a 1000-position domain — and
// demand bit-identity with the linear oracle: the output tuples must equal
// the canonical form of the dense per-position computation exactly, not
// just approximately.

/// Domain size for the skewed-kernel properties (large enough that a long
/// operand clears the 16× dispatch ratio against a short one).
const WIDE: usize = 1000;

fn oracle_weakest(a: &[f64], ma: f64, b: &[f64], mb: f64) -> Vec<f64> {
    let out_max = ma + mb;
    a.iter()
        .zip(b)
        .map(|(x, y)| (x / ma).min(y / mb) * out_max)
        .collect()
}

fn oracle_product(a: &[f64], ma: f64, b: &[f64], mb: f64) -> Vec<f64> {
    let out_max = ma + mb;
    a.iter()
        .zip(b)
        .map(|(x, y)| (x / ma) * (y / mb) * out_max)
        .collect()
}

/// A sparse list with roughly `entries` entries over `WIDE` positions,
/// values drawn from exact binary fractions of `max` so the oracle's f64
/// arithmetic reproduces the kernels' bit-for-bit.
fn sparse(entries: std::ops::Range<usize>, max: f64) -> impl Strategy<Value = Vec<f64>> {
    let pool = vec![0.25 * max, 0.5 * max, 0.75 * max, max];
    prop::collection::vec(
        (0usize..WIDE, 1usize..4, prop::sample::select(pool)),
        entries,
    )
    .prop_map(|spans| {
        let mut dense = vec![0.0; WIDE];
        for (start, len, v) in spans {
            for slot in dense.iter_mut().skip(start).take(len) {
                *slot = v;
            }
        }
        dense
    })
}

/// Exact (bit-level) equality with the canonical form of a dense oracle.
fn assert_bit_identical(
    out: &SimilarityList,
    expect_dense: &[f64],
    max: f64,
) -> Result<(), TestCaseError> {
    out.check_invariants().unwrap();
    let expect = SimilarityList::from_dense(expect_dense, max);
    prop_assert_eq!(out.to_tuples(), expect.to_tuples());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn skewed_and_bit_identical_to_oracle(
        short in sparse(0..4, 2.0),
        long in sparse(120..240, 3.0),
    ) {
        let ls = SimilarityList::from_dense(&short, 2.0);
        let ll = SimilarityList::from_dense(&long, 3.0);
        // Both orientations: the sum combiner is symmetric, but the kernel
        // drives on whichever side is shorter.
        assert_bit_identical(&list::and(&ls, &ll), &oracle_and(&short, &long), 5.0)?;
        assert_bit_identical(&list::and(&ll, &ls), &oracle_and(&long, &short), 5.0)?;
    }

    #[test]
    fn skewed_max_merge_bit_identical_to_oracle(
        short in sparse(0..4, 4.0),
        long in sparse(120..240, 4.0),
    ) {
        let ls = SimilarityList::from_dense(&short, 4.0);
        let ll = SimilarityList::from_dense(&long, 4.0);
        assert_bit_identical(&list::max_merge(&ls, &ll), &oracle_max(&short, &long), 4.0)?;
        assert_bit_identical(&list::max_merge(&ll, &ls), &oracle_max(&long, &short), 4.0)?;
    }

    #[test]
    fn skewed_annihilating_conjunctions_bit_identical_to_oracle(
        short in sparse(0..4, 2.0),
        long in sparse(120..240, 4.0),
    ) {
        let ls = SimilarityList::from_dense(&short, 2.0);
        let ll = SimilarityList::from_dense(&long, 4.0);
        let weak = list::and_with(&ls, &ll, simvid_core::ConjunctionSemantics::WeakestLink);
        assert_bit_identical(&weak, &oracle_weakest(&short, 2.0, &long, 4.0), 6.0)?;
        let weak_rev = list::and_with(&ll, &ls, simvid_core::ConjunctionSemantics::WeakestLink);
        assert_bit_identical(&weak_rev, &oracle_weakest(&long, 4.0, &short, 2.0), 6.0)?;
        let prod = list::and_with(&ls, &ll, simvid_core::ConjunctionSemantics::Product);
        assert_bit_identical(&prod, &oracle_product(&short, 2.0, &long, 4.0), 6.0)?;
    }

    #[test]
    fn balanced_merges_still_match_oracle(
        a in sparse(100..200, 2.0),
        b in sparse(100..200, 3.0),
    ) {
        // 1:1 ratio: the dispatch must stay on the linear sweep and agree
        // with the oracle all the same.
        let la = SimilarityList::from_dense(&a, 2.0);
        let lb = SimilarityList::from_dense(&b, 3.0);
        assert_bit_identical(&list::and(&la, &lb), &oracle_and(&a, &b), 5.0)?;
    }

    #[test]
    fn skewed_until_matches_oracle(
        g in sparse(120..240, 1.0),
        h in sparse(0..4, 5.0),
        theta in prop::sample::select(vec![0.0, 0.3, 0.5, 0.9]),
    ) {
        // A long g against a sparse h exercises the galloped eligible-entry
        // searches in the until sweep; the dense oracle is unchanged.
        let lg = SimilarityList::from_dense(&g, 1.0);
        let lh = SimilarityList::from_dense(&h, 5.0);
        let out = list::until(&lg, &lh, theta);
        out.check_invariants().unwrap();
        let expect = oracle_until(&g, 1.0, &h, theta);
        prop_assert!(approx(&out.to_dense(WIDE), &expect));
    }

    #[test]
    fn skewed_eventually_matches_oracle(a in sparse(0..4, 2.0)) {
        // Near-empty and single-entry inputs through the unary sweep.
        let la = SimilarityList::from_dense(&a, 2.0);
        let out = list::eventually(&la);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(WIDE), &oracle_eventually(&a)));
    }
}
