//! Property tests: every list algorithm agrees with a brute-force oracle on
//! dense arrays, and preserves the canonical-form invariants.

use proptest::prelude::*;
use simvid_core::{list, SimilarityList};

const N: usize = 64;

/// Random dense similarity array: values from a small pool so runs form.
fn dense(max: f64) -> impl Strategy<Value = Vec<f64>> {
    let pool = vec![0.0, 0.0, 0.0, 0.2 * max, 0.5 * max, 0.8 * max, max];
    prop::collection::vec(prop::sample::select(pool), N)
}

fn approx(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

// ---- oracles -------------------------------------------------------------

fn oracle_and(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn oracle_max(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x.max(*y)).collect()
}

fn oracle_next(a: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len()];
    let n = a.len().saturating_sub(1);
    out[..n].copy_from_slice(&a[1..=n]);
    out
}

fn oracle_eventually(a: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    for i in (0..a.len().saturating_sub(1)).rev() {
        out[i] = out[i].max(out[i + 1]);
    }
    out
}

/// Direct transcription of the similarity semantics of `g until h`:
/// value(i) = max over u'' = i, or u'' > i with frac_g ≥ θ on [i, u''−1].
fn oracle_until(g: &[f64], gmax: f64, h: &[f64], theta: f64) -> Vec<f64> {
    let cut = theta * gmax - 1e-12;
    let n = g.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut best = h[i];
        let mut k = i;
        // A position absent from the list has similarity zero and never
        // counts as satisfying g, even at threshold zero.
        while k < n - 1 && g[k] > 0.0 && g[k] >= cut {
            k += 1;
            best = best.max(h[k]);
        }
        out[i] = best;
    }
    out
}

// ---- properties ----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn and_matches_oracle(a in dense(2.0), b in dense(3.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let lb = SimilarityList::from_dense(&b, 3.0);
        let out = list::and(&la, &lb);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_and(&a, &b)));
        prop_assert_eq!(out.max(), 5.0);
    }

    #[test]
    fn and_is_commutative(a in dense(2.0), b in dense(3.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let lb = SimilarityList::from_dense(&b, 3.0);
        prop_assert_eq!(list::and(&la, &lb).to_tuples(), list::and(&lb, &la).to_tuples());
    }

    #[test]
    fn max_merge_matches_oracle(a in dense(4.0), b in dense(4.0)) {
        let la = SimilarityList::from_dense(&a, 4.0);
        let lb = SimilarityList::from_dense(&b, 4.0);
        let out = list::max_merge(&la, &lb);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_max(&a, &b)));
    }

    #[test]
    fn max_merge_many_matches_pairwise_fold(
        arrays in prop::collection::vec(dense(4.0), 1..6)
    ) {
        let lists: Vec<SimilarityList> =
            arrays.iter().map(|a| SimilarityList::from_dense(a, 4.0)).collect();
        let dc = list::max_merge_many(&lists);
        let mut expect = vec![0.0; N];
        for a in &arrays {
            expect = oracle_max(&expect, a);
        }
        prop_assert!(approx(&dc.to_dense(N), &expect));
    }

    #[test]
    fn next_matches_oracle(a in dense(2.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let out = list::next(&la);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_next(&a)));
    }

    #[test]
    fn eventually_matches_oracle(a in dense(2.0)) {
        let la = SimilarityList::from_dense(&a, 2.0);
        let out = list::eventually(&la);
        out.check_invariants().unwrap();
        prop_assert!(approx(&out.to_dense(N), &oracle_eventually(&a)));
    }

    #[test]
    fn until_matches_oracle(
        g in dense(1.0),
        h in dense(5.0),
        theta in prop::sample::select(vec![0.0, 0.3, 0.5, 0.9]),
    ) {
        let lg = SimilarityList::from_dense(&g, 1.0);
        let lh = SimilarityList::from_dense(&h, 5.0);
        let out = list::until(&lg, &lh, theta);
        out.check_invariants().unwrap();
        prop_assert!(
            approx(&out.to_dense(N), &oracle_until(&g, 1.0, &h, theta)),
            "g={:?} h={:?} theta={} got={:?} want={:?}",
            g, h, theta, out.to_dense(N), oracle_until(&g, 1.0, &h, theta)
        );
        prop_assert_eq!(out.max(), 5.0);
    }

    #[test]
    fn eventually_equals_until_true(h in dense(5.0)) {
        // eventually h == (true until h) when `true` covers every position.
        let lh = SimilarityList::from_dense(&h, 5.0);
        let tt = SimilarityList::from_tuples(vec![(1, N as u32, 1.0)], 1.0).unwrap();
        let via_until = list::until(&tt, &lh, 0.5);
        let direct = list::eventually(&lh);
        prop_assert!(approx(&via_until.to_dense(N), &direct.to_dense(N)));
    }

    #[test]
    fn dense_round_trip(a in dense(3.0)) {
        let l = SimilarityList::from_dense(&a, 3.0);
        l.check_invariants().unwrap();
        prop_assert!(approx(&l.to_dense(N), &a));
    }

    #[test]
    fn slice_unslice_round_trip(a in dense(2.0), lo in 1u32..30, len in 1u32..30) {
        let l = SimilarityList::from_dense(&a, 2.0);
        let hi = (lo + len).min(N as u32);
        let sliced = l.slice_window(lo, hi);
        sliced.check_invariants().unwrap();
        let back = sliced.unslice_window(lo);
        // The round trip equals the original restricted to [lo, hi].
        let mut expect = vec![0.0; N];
        for (i, item) in expect.iter_mut().enumerate() {
            let pos = i as u32 + 1;
            if pos >= lo && pos <= hi {
                *item = a[i];
            }
        }
        prop_assert!(approx(&back.to_dense(N), &expect));
    }

    #[test]
    fn until_value_never_below_h(g in dense(1.0), h in dense(5.0)) {
        // u'' = u is always allowed, so the output dominates h point-wise.
        let lg = SimilarityList::from_dense(&g, 1.0);
        let lh = SimilarityList::from_dense(&h, 5.0);
        let out = list::until(&lg, &lh, 0.5).to_dense(N);
        for (o, hv) in out.iter().zip(&h) {
            prop_assert!(o >= hv);
        }
    }

    #[test]
    fn coalesce_preserves_semantics(a in dense(2.0)) {
        let l = SimilarityList::from_dense(&a, 2.0);
        let c = l.clone().coalesce();
        c.check_invariants().unwrap();
        prop_assert!(approx(&c.to_dense(N), &l.to_dense(N)));
        prop_assert!(c.len() <= l.len());
    }
}
