//! Robustness: the SQL parser never panics; whatever parses either
//! executes or fails with a typed error (no internal panics end to end).

use proptest::prelude::*;
use simvid_relal::{parse_script, Database};

fn token_soup() -> impl Strategy<Value = String> {
    let token = prop::sample::select(vec![
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "UNION", "ALL", "CREATE", "TABLE", "AS",
        "DROP", "IF", "EXISTS", "NOT", "INSERT", "INTO", "VALUES", "AND", "OR", "MIN", "MAX",
        "SUM", "COUNT", "LEAST", "INDEX", "ON", "INT", "FLOAT", "TEXT", "t", "x", "y", "(", ")",
        ",", ".", ";", "*", "+", "-", "/", "=", "<>", "<", "<=", ">", ">=", "'s'", "1", "2.5",
    ]);
    prop::collection::vec(token, 0..20).prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    #[test]
    fn parser_never_panics_on_arbitrary_strings(s in "\\PC{0,50}") {
        let _ = parse_script(&s);
    }

    #[test]
    fn parse_and_execute_never_panic_on_token_soup(s in token_soup()) {
        // Parsing must not panic; execution of whatever parses must return
        // a typed error or succeed against a tiny database.
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (x INT, y FLOAT); INSERT INTO t VALUES (1, 2.0);")
            .unwrap();
        let _ = db.execute_script(&s);
    }

    #[test]
    fn error_positions_are_in_range(s in "[a-zA-Z(),.;*<>=' 0-9]{0,40}") {
        if let Err(simvid_relal::SqlError::Parse { pos, .. }) = parse_script(&s) {
            prop_assert!(pos <= s.len());
        }
    }
}
