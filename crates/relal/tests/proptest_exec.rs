//! Executor-strategy equivalence: the same logical query must return the
//! same rows whichever physical strategy the planner picks (hash join vs
//! nested loop, index range join vs scan), and grouping must match a
//! hand-rolled oracle.

use proptest::prelude::*;
use simvid_relal::{Database, Value};
use std::collections::HashMap;

fn load_pairs(db: &mut Database, name: &str, rows: &[(i64, i64)]) {
    db.execute(&format!("CREATE TABLE {name} (k INT, v INT)"))
        .unwrap();
    db.insert_rows(
        name,
        rows.iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]),
    )
    .unwrap();
}

fn sorted_rows(rs: &simvid_relal::ResultSet) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = rs
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn hash_join_equals_nested_loop(
        a in prop::collection::vec((0i64..8, 0i64..50), 0..30),
        b in prop::collection::vec((0i64..8, 0i64..50), 0..30),
    ) {
        let mut db = Database::new();
        load_pairs(&mut db, "a", &a);
        load_pairs(&mut db, "b", &b);
        // Equality predicate: planner picks a hash join.
        let hash = db
            .execute("SELECT a.k, a.v, b.v FROM a, b WHERE a.k = b.k")
            .unwrap().unwrap();
        // The same predicate phrased as two inequalities: no equi pattern,
        // so the planner falls back to a filtered nested loop.
        let nested = db
            .execute("SELECT a.k, a.v, b.v FROM a, b WHERE a.k <= b.k AND a.k >= b.k")
            .unwrap().unwrap();
        prop_assert_eq!(sorted_rows(&hash), sorted_rows(&nested));
    }

    #[test]
    fn index_range_join_equals_scan(
        intervals in prop::collection::vec((1i64..40, 0i64..8), 0..12),
    ) {
        // intervals as (beg, extra): [beg, beg+extra]
        let mut db = Database::new();
        db.execute("CREATE TABLE iv (beg INT, end INT)").unwrap();
        db.insert_rows(
            "iv",
            intervals.iter().map(|(b, e)| vec![Value::Int(*b), Value::Int(b + e)]),
        ).unwrap();
        db.execute("CREATE TABLE nums (n INT)").unwrap();
        db.insert_rows("nums", (1..=50i64).map(|i| vec![Value::Int(i)])).unwrap();

        let q = "SELECT i.beg, n.n FROM iv i, nums n WHERE n.n >= i.beg AND n.n <= i.end";
        let without_index = db.execute(q).unwrap().unwrap();
        db.create_index("nums", "n").unwrap();
        let with_index = db.execute(q).unwrap().unwrap();
        prop_assert_eq!(sorted_rows(&without_index), sorted_rows(&with_index));
    }

    #[test]
    fn group_by_matches_oracle(
        rows in prop::collection::vec((0i64..6, -20i64..20), 0..40),
    ) {
        let mut db = Database::new();
        load_pairs(&mut db, "t", &rows);
        let rs = db
            .execute("SELECT k, SUM(v), MIN(v), MAX(v), COUNT(*) FROM t GROUP BY k ORDER BY k")
            .unwrap().unwrap();
        let mut oracle: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for (k, v) in &rows {
            let e = oracle.entry(*k).or_insert((0, i64::MAX, i64::MIN, 0));
            e.0 += v;
            e.1 = e.1.min(*v);
            e.2 = e.2.max(*v);
            e.3 += 1;
        }
        prop_assert_eq!(rs.rows.len(), oracle.len());
        for r in &rs.rows {
            let k = r[0].as_int().unwrap();
            let (sum, min, max, count) = oracle[&k];
            prop_assert_eq!(r[1].as_int().unwrap(), sum);
            prop_assert_eq!(r[2].as_int().unwrap(), min);
            prop_assert_eq!(r[3].as_int().unwrap(), max);
            prop_assert_eq!(r[4].as_int().unwrap(), count);
        }
        // ORDER BY k ascending.
        let keys: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    #[test]
    fn exists_probe_equals_slow_path(
        a in prop::collection::vec((0i64..10, 0i64..10), 0..25),
        b in prop::collection::vec((0i64..10, 0i64..10), 0..25),
    ) {
        let mut db = Database::new();
        load_pairs(&mut db, "a", &a);
        load_pairs(&mut db, "b", &b);
        // Equality correlation: the fast hash-probe path.
        let fast = db
            .execute("SELECT a.k, a.v FROM a WHERE NOT EXISTS \
                      (SELECT * FROM b WHERE b.k = a.k)")
            .unwrap().unwrap();
        // The same condition phrased with inequalities: generic fallback.
        let slow = db
            .execute("SELECT a.k, a.v FROM a WHERE NOT EXISTS \
                      (SELECT * FROM b WHERE b.k <= a.k AND b.k >= a.k)")
            .unwrap().unwrap();
        prop_assert_eq!(sorted_rows(&fast), sorted_rows(&slow));
    }
}
