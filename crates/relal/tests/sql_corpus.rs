//! A corpus of small SQL scenarios exercising the engine's surface:
//! expressions, joins, grouping, ordering, set operations, DDL/DML
//! interactions and error handling.

use simvid_relal::{ColType, Database, SqlError, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary FLOAT);
         INSERT INTO emp VALUES
           (1, 'ada', 'eng', 120.0),
           (2, 'bob', 'eng', 95.5),
           (3, 'cyd', 'ops', 80.0),
           (4, 'dee', 'ops', 80.0),
           (5, 'eli', 'mgmt', 200.0);",
    )
    .unwrap();
    db
}

fn ints(rs: &simvid_relal::ResultSet, col: usize) -> Vec<i64> {
    rs.rows.iter().map(|r| r[col].as_int().unwrap()).collect()
}

#[test]
fn where_with_boolean_combinations() {
    let mut db = db();
    let rs = db
        .execute("SELECT id FROM emp WHERE dept = 'eng' OR salary > 150.0 ORDER BY id")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 0), vec![1, 2, 5]);
    let rs = db
        .execute("SELECT id FROM emp WHERE NOT (dept = 'eng') AND salary >= 80.0 ORDER BY id")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 0), vec![3, 4, 5]);
}

#[test]
fn arithmetic_precedence_in_projection() {
    let mut db = db();
    let rs = db
        .execute("SELECT id + 2 * 3, (id + 2) * 3 FROM emp WHERE id = 1")
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(7), Value::Int(9)]);
}

#[test]
fn multi_key_order_by_with_directions() {
    let mut db = db();
    let rs = db
        .execute("SELECT dept, id FROM emp ORDER BY dept ASC, id DESC")
        .unwrap()
        .unwrap();
    let pairs: Vec<(String, i64)> = rs
        .rows
        .iter()
        .map(|r| {
            let Value::Str(d) = &r[0] else { panic!() };
            (d.clone(), r[1].as_int().unwrap())
        })
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("eng".into(), 2),
            ("eng".into(), 1),
            ("mgmt".into(), 5),
            ("ops".into(), 4),
            ("ops".into(), 3)
        ]
    );
}

#[test]
fn order_by_column_position() {
    let mut db = db();
    let rs = db
        .execute("SELECT salary, id FROM emp ORDER BY 1 DESC, 2")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 1), vec![5, 1, 2, 3, 4]);
}

#[test]
fn group_by_expression_key() {
    let mut db = db();
    // Group by a computed bucket: salary rounded down to hundreds.
    let rs = db
        .execute("SELECT COUNT(*) AS c FROM emp GROUP BY salary >= 100.0 ORDER BY c")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 0), vec![2, 3]);
}

#[test]
fn count_distinct_groups_and_global() {
    let mut db = db();
    let rs = db
        .execute("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 1), vec![2, 1, 2]);
    let rs = db.execute("SELECT COUNT(*) FROM emp").unwrap().unwrap();
    assert_eq!(ints(&rs, 0), vec![5]);
}

#[test]
fn self_join_with_theta_condition() {
    let mut db = db();
    // Pairs of employees in the same dept with the first earning more.
    let rs = db
        .execute(
            "SELECT a.id AS aid, b.id AS bid FROM emp a, emp b \
             WHERE a.dept = b.dept AND a.salary > b.salary ORDER BY aid",
        )
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn three_way_join() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE dept (name TEXT, floor INT);
         INSERT INTO dept VALUES ('eng', 3), ('ops', 1), ('mgmt', 5);
         CREATE TABLE floors (floor INT, city TEXT);
         INSERT INTO floors VALUES (3, 'zurich'), (1, 'basel'), (5, 'zug');",
    )
    .unwrap();
    let rs = db
        .execute(
            "SELECT e.name, f.city FROM emp e, dept d, floors f \
             WHERE e.dept = d.name AND d.floor = f.floor AND e.salary > 100.0 \
             ORDER BY e.name",
        )
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Str("zurich".into()));
    assert_eq!(rs.rows[1][1], Value::Str("zug".into()));
}

#[test]
fn union_all_promotes_int_to_float() {
    let mut db = db();
    let rs = db
        .execute("SELECT id FROM emp WHERE id = 1 UNION ALL SELECT salary FROM emp WHERE id = 3")
        .unwrap()
        .unwrap();
    assert_eq!(rs.types[0], ColType::Float);
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn union_all_rejects_mixed_text_and_number() {
    let mut db = db();
    assert!(matches!(
        db.execute("SELECT id FROM emp UNION ALL SELECT name FROM emp"),
        Err(SqlError::Schema(_))
    ));
}

#[test]
fn strings_compare_lexicographically() {
    let mut db = db();
    let rs = db
        .execute("SELECT id FROM emp WHERE name < 'cyd' ORDER BY id")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 0), vec![1, 2]);
}

#[test]
fn create_table_as_preserves_group_types() {
    let mut db = db();
    db.execute("CREATE TABLE summary AS SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept")
        .unwrap();
    let t = db.table("summary").unwrap();
    assert_eq!(t.schema.cols[0].ty, ColType::Text);
    assert_eq!(t.schema.cols[1].ty, ColType::Float);
    assert_eq!(t.len(), 3);
}

#[test]
fn insert_select_appends_with_coercion() {
    let mut db = db();
    db.execute("CREATE TABLE pay (amount FLOAT)").unwrap();
    db.execute("INSERT INTO pay SELECT id FROM emp WHERE id <= 2")
        .unwrap();
    let t = db.table("pay").unwrap();
    assert_eq!(t.rows[0][0], Value::Float(1.0));
    assert_eq!(t.len(), 2);
}

#[test]
fn exists_against_empty_table() {
    let mut db = db();
    db.execute("CREATE TABLE ghost (id INT)").unwrap();
    let rs = db
        .execute(
            "SELECT id FROM emp WHERE NOT EXISTS (SELECT * FROM ghost WHERE ghost.id = emp.id)",
        )
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows.len(), 5, "NOT EXISTS over empty keeps everything");
    let rs = db
        .execute("SELECT id FROM emp WHERE EXISTS (SELECT * FROM ghost WHERE ghost.id = emp.id)")
        .unwrap()
        .unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn uncorrelated_exists() {
    let mut db = db();
    let rs = db
        .execute("SELECT id FROM emp WHERE EXISTS (SELECT * FROM emp e2 WHERE e2.salary > 199.0)")
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows.len(), 5);
}

#[test]
fn least_greatest_mixed_types() {
    let mut db = db();
    let rs = db
        .execute("SELECT LEAST(salary, 100), GREATEST(salary, 100) FROM emp WHERE id = 1")
        .unwrap()
        .unwrap();
    // Projection coerces to the inferred (promoted) float column type.
    assert_eq!(rs.rows[0][0], Value::Float(100.0));
    assert_eq!(rs.rows[0][1], Value::Float(120.0));
}

#[test]
fn abs_function() {
    let mut db = db();
    let rs = db
        .execute("SELECT ABS(0 - id), ABS(salary - 200.0) FROM emp WHERE id = 5")
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(5), Value::Float(0.0)]);
}

#[test]
fn quoted_strings_with_embedded_quotes() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE q (s TEXT); INSERT INTO q VALUES ('it''s');")
        .unwrap();
    let rs = db
        .execute("SELECT s FROM q WHERE s = 'it''s'")
        .unwrap()
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Str("it's".into()));
}

#[test]
fn duplicate_alias_rejected() {
    let mut db = db();
    assert!(db.execute("SELECT * FROM emp e, emp e").is_err());
}

#[test]
fn type_errors_surface() {
    let mut db = db();
    assert!(matches!(
        db.execute("SELECT id + name FROM emp"),
        Err(SqlError::Type(_))
    ));
    assert!(matches!(
        db.execute("SELECT id FROM emp WHERE name > 3"),
        Err(SqlError::Type(_))
    ));
}

#[test]
fn comments_in_scripts() {
    let mut db = db();
    let rs = db
        .execute("SELECT id -- trailing comment\nFROM emp -- another\nWHERE id = 1")
        .unwrap()
        .unwrap();
    assert_eq!(ints(&rs, 0), vec![1]);
}

#[test]
fn statement_count_tracks_executions() {
    let mut db = Database::new();
    db.execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1); SELECT x FROM t;")
        .unwrap();
    assert_eq!(db.statements_executed(), 3);
}

#[test]
fn planner_traces_show_strategy_selection() {
    let mut db = db();
    db.execute_script(
        "CREATE TABLE nums (n INT);
         INSERT INTO nums VALUES (1), (2), (3), (4), (5);",
    )
    .unwrap();
    db.create_index("nums", "n").unwrap();

    // Equality predicate: hash join.
    let (_, trace) = db
        .execute_traced("SELECT e.id FROM emp e, emp f WHERE e.dept = f.dept")
        .unwrap();
    assert!(trace.iter().any(|t| t.contains("hash join")), "{trace:?}");

    // Two range bounds against the indexed column: index range join.
    let (_, trace) = db
        .execute_traced("SELECT n.n FROM emp e, nums n WHERE n.n >= e.id AND n.n <= e.id + 1")
        .unwrap();
    assert!(
        trace.iter().any(|t| t.contains("index range join on `n`")),
        "{trace:?}"
    );

    // No usable pattern: nested loop.
    let (_, trace) = db
        .execute_traced("SELECT e.id FROM emp e, emp f WHERE e.salary > f.salary")
        .unwrap();
    assert!(trace.iter().any(|t| t.contains("nested loop")), "{trace:?}");

    // First table is always a scan.
    assert!(trace.first().unwrap().contains("scan"), "{trace:?}");
}

#[test]
fn traced_rejects_non_select() {
    let mut db = db();
    assert!(db.execute_traced("DROP TABLE emp").is_err());
}
