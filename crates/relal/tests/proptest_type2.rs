//! Property tests: the keyed SQL translation agrees with the direct table
//! algebra on random binding tables.

use proptest::prelude::*;
use simvid_core::{list, SimilarityTable};
use simvid_relal::translate;
use simvid_relal::translate_table::{
    conjunction_table_script, eventually_table_script, load_table, next_table_script,
    project_table_script, read_table, until_table_script,
};
use simvid_relal::Database;
use simvid_workload::randomlists::ListGenConfig;
use simvid_workload::randomtables::{generate, TableGenConfig};

const N: u32 = 40;
const THETA: f64 = 0.5;

fn cfg(cols: &[&str], rows: usize, seed_max: f64) -> TableGenConfig {
    TableGenConfig {
        cols: cols.iter().map(|c| (*c).to_owned()).collect(),
        rows,
        universe: 4,
        lists: ListGenConfig {
            n: N,
            coverage: 0.3,
            mean_run: 3.0,
            max_sim: seed_max,
        },
    }
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    translate::load_numbers(&mut db, N).unwrap();
    db
}

fn assert_tables_agree(direct: &SimilarityTable, sql: &SimilarityTable, what: &str) {
    let nonempty = |t: &SimilarityTable| t.rows.iter().filter(|r| !r.list.is_empty()).count();
    assert_eq!(nonempty(direct), nonempty(sql), "{what}: row counts");
    for ra in &direct.rows {
        if ra.list.is_empty() {
            continue;
        }
        let rb = sql
            .rows
            .iter()
            .find(|r| r.objs == ra.objs)
            .unwrap_or_else(|| panic!("{what}: binding {:?} missing from SQL side", ra.objs));
        let (da, db) = (ra.list.to_dense(N as usize), rb.list.to_dense(N as usize));
        for (i, (x, y)) in da.iter().zip(&db).enumerate() {
            assert!(
                (x - y).abs() < 1e-9,
                "{what}: binding {:?} position {}: {x} vs {y}",
                ra.objs,
                i + 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn keyed_conjunction_random(seed in 0u64..10_000) {
        let a = generate(&cfg(&["x", "y"], 4, 2.0), seed);
        let b = generate(&cfg(&["y", "z"], 4, 3.0), seed ^ 0xdead);
        let direct = a.join(&b, 5.0, list::and);
        let mut db = fresh_db();
        load_table(&mut db, "a_t", &a).unwrap();
        load_table(&mut db, "b_t", &b).unwrap();
        db.execute_script(&conjunction_table_script("a_t", "b_t", "o_t", &a.obj_cols, &b.obj_cols))
            .unwrap();
        let cols = ["x", "y", "z"].map(str::to_owned).to_vec();
        let got = read_table(&db, "o_t", &cols, 5.0).unwrap();
        assert_tables_agree(&direct, &got, "conjunction");
    }

    #[test]
    fn keyed_until_random(seed in 0u64..10_000) {
        let g = generate(&cfg(&["x"], 3, 1.0), seed);
        let h = generate(&cfg(&["x"], 3, 4.0), seed ^ 0xbeef);
        let direct = g.join(&h, 4.0, |a, b| list::until(a, b, THETA));
        let mut db = fresh_db();
        load_table(&mut db, "g_t", &g).unwrap();
        load_table(&mut db, "h_t", &h).unwrap();
        let cut = THETA * g.max - 1e-12;
        db.execute_script(&until_table_script("g_t", "h_t", "u_t", &g.obj_cols, &h.obj_cols, cut))
            .unwrap();
        let got = read_table(&db, "u_t", &g.obj_cols, 4.0).unwrap();
        assert_tables_agree(&direct, &got, "until");
    }

    #[test]
    fn keyed_unary_ops_random(seed in 0u64..10_000) {
        let t = generate(&cfg(&["x"], 4, 2.5), seed);
        let mut db = fresh_db();
        load_table(&mut db, "t_t", &t).unwrap();

        db.execute_script(&eventually_table_script("t_t", "ev_t", &t.obj_cols)).unwrap();
        let got = read_table(&db, "ev_t", &t.obj_cols, 2.5).unwrap();
        assert_tables_agree(&t.clone().map_lists(2.5, list::eventually), &got, "eventually");

        db.execute_script(&next_table_script("t_t", "nx_t", &t.obj_cols)).unwrap();
        let got = read_table(&db, "nx_t", &t.obj_cols, 2.5).unwrap();
        assert_tables_agree(&t.clone().map_lists(2.5, list::next), &got, "next");

        db.execute_script(&project_table_script("t_t", "pj_t", &t.obj_cols, "x")).unwrap();
        let got = read_table(&db, "pj_t", &[], 2.5).unwrap();
        assert_tables_agree(&t.clone().project_out_obj("x"), &got, "project");
    }
}
