//! Table schemas.

use crate::{SqlError, Value};

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Text,
}

impl ColType {
    /// Whether a value inhabits this type (ints are accepted for `Float`).
    #[must_use]
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColType::Int, Value::Int(_))
                | (ColType::Float, Value::Float(_) | Value::Int(_))
                | (ColType::Text, Value::Str(_))
        )
    }

    /// The type of a value.
    #[must_use]
    pub fn of(v: &Value) -> ColType {
        match v {
            Value::Int(_) => ColType::Int,
            Value::Float(_) => ColType::Float,
            Value::Str(_) => ColType::Text,
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercase).
    pub name: String,
    /// Column type.
    pub ty: ColType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns.
    pub cols: Vec<Column>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(cols: impl IntoIterator<Item = (String, ColType)>) -> Schema {
        Schema {
            cols: cols
                .into_iter()
                .map(|(name, ty)| Column { name, ty })
                .collect(),
        }
    }

    /// Index of a column by name.
    #[must_use]
    pub fn col(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Validates a row against the schema, coercing ints into float
    /// columns.
    pub fn check_row(&self, mut row: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        if row.len() != self.cols.len() {
            return Err(SqlError::Schema(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.cols.len()
            )));
        }
        for (v, c) in row.iter_mut().zip(&self.cols) {
            if c.ty == ColType::Float {
                if let Value::Int(i) = *v {
                    *v = Value::Float(i as f64);
                }
            }
            if !c.ty.admits(v) {
                return Err(SqlError::Schema(format!(
                    "value {v} does not fit column `{}`",
                    c.name
                )));
            }
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_len() {
        let s = Schema::new(vec![
            ("id".into(), ColType::Int),
            ("act".into(), ColType::Float),
        ]);
        assert_eq!(s.col("act"), Some(1));
        assert_eq!(s.col("nope"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn check_row_coerces_int_to_float() {
        let s = Schema::new(vec![("act".into(), ColType::Float)]);
        let row = s.check_row(vec![Value::Int(3)]).unwrap();
        assert_eq!(row, vec![Value::Float(3.0)]);
    }

    #[test]
    fn check_row_rejects_bad_arity_and_type() {
        let s = Schema::new(vec![("id".into(), ColType::Int)]);
        assert!(s.check_row(vec![]).is_err());
        assert!(s.check_row(vec![Value::Str("x".into())]).is_err());
        assert!(s.check_row(vec![Value::Float(1.5)]).is_err());
    }
}
