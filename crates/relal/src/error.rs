//! Engine errors.

use std::fmt;

/// Errors from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lex/parse error with byte position.
    Parse {
        /// Byte offset into the statement text.
        pos: usize,
        /// Description.
        msg: String,
    },
    /// Unknown table.
    NoSuchTable(String),
    /// Table already exists.
    TableExists(String),
    /// Unknown or ambiguous column.
    Column(String),
    /// Schema violation.
    Schema(String),
    /// Type error during evaluation.
    Type(String),
    /// Unsupported construct.
    Unsupported(String),
}

impl SqlError {
    pub(crate) fn parse(pos: usize, msg: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { pos, msg } => write!(f, "SQL parse error at byte {pos}: {msg}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::Column(c) => write!(f, "column error: {c}"),
            SqlError::Schema(s) => write!(f, "schema error: {s}"),
            SqlError::Type(s) => write!(f, "type error: {s}"),
            SqlError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SqlError::NoSuchTable("t".into()).to_string().contains("t"));
        assert!(SqlError::parse(3, "oops").to_string().contains("byte 3"));
    }
}
