//! The table catalog.

use crate::{SqlError, Table};
use std::collections::HashMap;

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    #[must_use]
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a new table.
    ///
    /// # Errors
    ///
    /// [`SqlError::TableExists`] when the name is taken.
    pub fn create(&mut self, name: &str, table: Table) -> Result<(), SqlError> {
        if self.tables.contains_key(name) {
            return Err(SqlError::TableExists(name.to_owned()));
        }
        self.tables.insert(name.to_owned(), table);
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`] unless `if_exists`.
    pub fn drop(&mut self, name: &str, if_exists: bool) -> Result<(), SqlError> {
        if self.tables.remove(name).is_none() && !if_exists {
            return Err(SqlError::NoSuchTable(name.to_owned()));
        }
        Ok(())
    }

    /// Looks up a table.
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`] on a missing table.
    pub fn get(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`] on a missing table.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))
    }

    /// Whether the catalog holds a table with this name.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColType, Schema};

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        let t = Table::new(Schema::new(vec![("x".into(), ColType::Int)]));
        c.create("t", t).unwrap();
        assert!(c.contains("t"));
        assert!(c.get("t").is_ok());
        assert!(matches!(
            c.create("t", Table::default()),
            Err(SqlError::TableExists(_))
        ));
        c.drop("t", false).unwrap();
        assert!(matches!(c.get("t"), Err(SqlError::NoSuchTable(_))));
        assert!(c.drop("t", false).is_err());
        c.drop("t", true).unwrap();
    }
}
