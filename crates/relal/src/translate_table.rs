//! SQL translation for **type (2)** formulas — similarity *tables* with
//! object-variable binding columns (§3.2 via SQL, the full scope of the
//! paper's second system for formulas without freeze quantifiers).
//!
//! A similarity table with object columns `x1 … xk` becomes a relation
//! `(x1 INT, …, xk INT, beg INT, end INT, act FLOAT)`. The operators are
//! the list scripts of [`crate::translate`] *keyed by the binding columns*:
//! natural join on shared variables, point expansion per binding,
//! per-binding gaps-and-islands coalescing, and existential quantifiers as
//! `GROUP BY remaining-columns, id MAX(act)`.
//!
//! [`SqlType2System`] drives the translation over a whole formula tree,
//! mirroring the direct engine: load one relation per atomic unit, then
//! emit and execute a statement sequence bottom-up.

use crate::{ColType, Database, Schema, SqlError, Value};
use simvid_core::{Row, SimilarityList, SimilarityTable};
use simvid_htl::{atomic_units, classify, is_pure, Formula, FormulaClass};
use simvid_model::ObjectId;
use std::fmt::Write as _;

/// Rows grouped by object binding: `(binding, (beg, end, act) tuples)`.
type BindingGroups = Vec<(Vec<ObjectId>, Vec<(u32, u32, f64)>)>;

/// Loads a similarity table (object columns only; attribute ranges are the
/// freeze machinery, outside type (2)) as a relation.
pub fn load_table(db: &mut Database, name: &str, table: &SimilarityTable) -> Result<(), SqlError> {
    if !table.attr_cols.is_empty() {
        return Err(SqlError::Unsupported(
            "attribute-range columns are outside the type (2) translation".into(),
        ));
    }
    db.drop_if_exists(name);
    let mut cols: Vec<(String, ColType)> = table
        .obj_cols
        .iter()
        .map(|c| (c.clone(), ColType::Int))
        .collect();
    cols.push(("beg".into(), ColType::Int));
    cols.push(("end".into(), ColType::Int));
    cols.push(("act".into(), ColType::Float));
    db.create_table(name, Schema::new(cols))?;
    let mut rows = Vec::new();
    for row in &table.rows {
        for e in row.list.entries() {
            let mut r: Vec<Value> = row.objs.iter().map(|o| Value::Int(o.0 as i64)).collect();
            r.push(Value::Int(i64::from(e.iv.beg)));
            r.push(Value::Int(i64::from(e.iv.end)));
            r.push(Value::Float(e.act));
            rows.push(r);
        }
    }
    db.insert_rows(name, rows)
}

/// Reads a relation back into a similarity table with the given columns
/// and maximum.
pub fn read_table(
    db: &Database,
    name: &str,
    obj_cols: &[String],
    max: f64,
) -> Result<SimilarityTable, SqlError> {
    let table = db.table(name)?;
    let key_idx: Vec<usize> = obj_cols
        .iter()
        .map(|c| {
            table
                .schema
                .col(c)
                .ok_or_else(|| SqlError::Column(c.clone()))
        })
        .collect::<Result<_, _>>()?;
    let bi = table
        .schema
        .col("beg")
        .ok_or_else(|| SqlError::Column("beg".into()))?;
    let ei = table
        .schema
        .col("end")
        .ok_or_else(|| SqlError::Column("end".into()))?;
    let ai = table
        .schema
        .col("act")
        .ok_or_else(|| SqlError::Column("act".into()))?;
    // Group rows by binding.
    let mut out = SimilarityTable::new(obj_cols.to_vec(), Vec::new(), max);
    let mut groups: BindingGroups = Vec::new();
    for r in &table.rows {
        let key: Vec<ObjectId> = key_idx
            .iter()
            .map(|&i| ObjectId(r[i].as_int().unwrap_or(0) as u64))
            .collect();
        let tuple = (
            r[bi].as_int().unwrap_or(0) as u32,
            r[ei].as_int().unwrap_or(0) as u32,
            r[ai].as_f64().unwrap_or(0.0),
        );
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(tuple),
            None => groups.push((key, vec![tuple])),
        }
    }
    for (objs, tuples) in groups {
        let list = SimilarityList::from_tuples(tuples, max)
            .map_err(|e| SqlError::Schema(format!("bad list for binding {objs:?}: {e}")))?;
        out.push_row(Row {
            objs,
            ranges: Vec::new(),
            list: std::sync::Arc::new(list),
        });
    }
    Ok(out.ensure_closed_row())
}

fn cols_list(prefix: &str, cols: &[String]) -> String {
    cols.iter()
        .map(|c| format!("{prefix}.{c} AS {c}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn eq_conds(a: &str, b: &str, cols: &[String]) -> String {
    cols.iter()
        .map(|c| format!("{a}.{c} = {b}.{c}"))
        .collect::<Vec<_>>()
        .join(" AND ")
}

fn bare_list(cols: &[String]) -> String {
    cols.join(", ")
}

/// `sep`-prefixed comma list, empty-safe ("x1, x2, " or "").
fn lead(cols: &[String]) -> String {
    if cols.is_empty() {
        String::new()
    } else {
        format!("{}, ", bare_list(cols))
    }
}

/// Qualified comma list with trailing separator ("st.x1, st.x2, " or "").
fn qlead(prefix: &str, cols: &[String]) -> String {
    if cols.is_empty() {
        String::new()
    } else {
        format!(
            "{}, ",
            cols.iter()
                .map(|c| format!("{prefix}.{c}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Statements coalescing a keyed point relation `pts(cols…, id, act)` into
/// interval form `out(cols…, beg, end, act)` — gaps-and-islands per
/// binding.
fn coalesce_keyed(pts: &str, out: &str, cols: &[String]) -> String {
    let key_eq_s = eq_conds("p", "s", cols);
    let and_keys = if cols.is_empty() {
        String::new()
    } else {
        format!("{key_eq_s} AND ")
    };
    let st_cols = cols_list("st", cols);
    let st_lead = if st_cols.is_empty() {
        String::new()
    } else {
        format!("{st_cols}, ")
    };
    let en_eq = eq_conds("en", "st", cols);
    let en_and = if cols.is_empty() {
        String::new()
    } else {
        format!("{en_eq} AND ")
    };
    let group_keys = qlead("st", cols);
    format!(
        "DROP TABLE IF EXISTS {out}_starts;\n\
         CREATE TABLE {out}_starts AS SELECT {sel} s.id AS id, s.act AS act FROM {pts} s \
         WHERE NOT EXISTS (SELECT * FROM {pts} p WHERE {and_keys}p.id = s.id - 1 AND p.act = s.act);\n\
         DROP TABLE IF EXISTS {out}_ends;\n\
         CREATE TABLE {out}_ends AS SELECT {sel} s.id AS id, s.act AS act FROM {pts} s \
         WHERE NOT EXISTS (SELECT * FROM {pts} p WHERE {and_keys}p.id = s.id + 1 AND p.act = s.act);\n\
         DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT {st_lead}st.id AS beg, MIN(en.id) AS end, st.act AS act \
         FROM {out}_starts st, {out}_ends en \
         WHERE {en_and}en.act = st.act AND en.id >= st.id \
         GROUP BY {group_keys}st.id, st.act;",
        sel = {
            let c = cols_list("s", cols);
            if c.is_empty() { c } else { format!("{c},") }
        },
    )
}

/// The union of output binding columns: `a`'s columns then `b`'s new ones.
fn joined_cols(a_cols: &[String], b_cols: &[String]) -> (Vec<String>, Vec<String>) {
    let shared: Vec<String> = a_cols
        .iter()
        .filter(|c| b_cols.contains(c))
        .cloned()
        .collect();
    let mut out = a_cols.to_vec();
    out.extend(b_cols.iter().filter(|c| !a_cols.contains(c)).cloned());
    (out, shared)
}

/// Script: the distinct joined bindings of two keyed relations.
fn bindings_script(a: &str, b: &str, out: &str, a_cols: &[String], b_cols: &[String]) -> String {
    let (out_cols, shared) = joined_cols(a_cols, b_cols);
    if out_cols.is_empty() {
        // Both operands are closed: the single (empty) evaluation always
        // joins — a constant one-row relation keeps the point expansion
        // alive even when an operand has no intervals (the closed-table
        // invariant: `g until h` with empty `g` still yields `h`).
        return format!("DROP TABLE IF EXISTS {out};\nCREATE TABLE {out} AS SELECT 1 AS one;");
    }
    let mut sels: Vec<String> = Vec::new();
    for c in &out_cols {
        let src = if a_cols.contains(c) { "a" } else { "b" };
        sels.push(format!("{src}.{c} AS {c}"));
    }
    let join = eq_conds("a", "b", &shared);
    let where_ = if join.is_empty() {
        String::new()
    } else {
        format!(" WHERE {join}")
    };
    let group: Vec<String> = out_cols
        .iter()
        .map(|c| {
            let src = if a_cols.contains(c) { "a" } else { "b" };
            format!("{src}.{c}")
        })
        .collect();
    format!(
        "DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT {} FROM {a} a, {b} b{where_} GROUP BY {};",
        sels.join(", "),
        group.join(", "),
    )
}

/// Script computing `out = a ∧ b` over keyed relations.
#[must_use]
pub fn conjunction_table_script(
    a: &str,
    b: &str,
    out: &str,
    a_cols: &[String],
    b_cols: &[String],
) -> String {
    let (out_cols, _) = joined_cols(a_cols, b_cols);
    let k = format!("{out}_bind");
    let mut s = bindings_script(a, b, &k, a_cols, b_cols);
    let ksel = cols_list("k", &out_cols);
    let klead = if ksel.is_empty() {
        String::new()
    } else {
        format!("{ksel}, ")
    };
    let a_match = eq_conds("t", "k", a_cols);
    let a_and = if a_cols.is_empty() {
        String::new()
    } else {
        format!("{a_match} AND ")
    };
    let b_match = eq_conds("t", "k", b_cols);
    let b_and = if b_cols.is_empty() {
        String::new()
    } else {
        format!("{b_match} AND ")
    };
    let _ = write!(
        s,
        "\nDROP TABLE IF EXISTS {out}_pts;\n\
         CREATE TABLE {out}_pts AS \
         SELECT {klead}n.n AS id, t.act AS act FROM {k} k, {a} t, numbers n \
         WHERE {a_and}n.n >= t.beg AND n.n <= t.end \
         UNION ALL \
         SELECT {klead}n.n AS id, t.act AS act FROM {k} k, {b} t, numbers n \
         WHERE {b_and}n.n >= t.beg AND n.n <= t.end;\n\
         DROP TABLE IF EXISTS {out}_sums;\n\
         CREATE TABLE {out}_sums AS SELECT {cols}id AS id, SUM(act) AS act \
         FROM {out}_pts GROUP BY {cols}id;\n{coal}",
        cols = lead(&out_cols),
        coal = coalesce_keyed(&format!("{out}_sums"), out, &out_cols),
    );
    s
}

/// Script computing `out = g until h` over keyed relations at absolute
/// threshold `cut`.
#[must_use]
pub fn until_table_script(
    g: &str,
    h: &str,
    out: &str,
    g_cols: &[String],
    h_cols: &[String],
    cut: f64,
) -> String {
    let (out_cols, _) = joined_cols(g_cols, h_cols);
    let k = format!("{out}_bind");
    let mut s = bindings_script(g, h, &k, g_cols, h_cols);
    let ksel = cols_list("k", &out_cols);
    let klead = if ksel.is_empty() {
        String::new()
    } else {
        format!("{ksel}, ")
    };
    let g_match = eq_conds("t", "k", g_cols);
    let g_and = if g_cols.is_empty() {
        String::new()
    } else {
        format!("{g_match} AND ")
    };
    let h_match = eq_conds("h2", "k", h_cols);
    let h_and = if h_cols.is_empty() {
        String::new()
    } else {
        format!("{h_match} AND ")
    };
    let key_eq = eq_conds("q", "p", &out_cols);
    let key_and = if out_cols.is_empty() {
        String::new()
    } else {
        format!("{key_eq} AND ")
    };
    let run_eq = eq_conds("e", "s", &out_cols);
    let run_and = if out_cols.is_empty() {
        String::new()
    } else {
        format!("{run_eq} AND ")
    };
    let psel = cols_list("p", &out_cols);
    let plead = if psel.is_empty() {
        String::new()
    } else {
        format!("{psel}, ")
    };
    let ssel = cols_list("s", &out_cols);
    let slead = if ssel.is_empty() {
        String::new()
    } else {
        format!("{ssel}, ")
    };
    let rsel = cols_list("r", &out_cols);
    let rlead = if rsel.is_empty() {
        String::new()
    } else {
        format!("{rsel}, ")
    };
    let _ = write!(
        s,
        "\nDROP TABLE IF EXISTS {out}_gpts;\n\
         CREATE TABLE {out}_gpts AS SELECT {klead}n.n AS id FROM {k} k, {g} t, numbers n \
         WHERE {g_and}t.act >= {cut} AND n.n >= t.beg AND n.n <= t.end;\n\
         DROP TABLE IF EXISTS {out}_gs;\n\
         CREATE TABLE {out}_gs AS SELECT {plead}p.id AS id FROM {out}_gpts p \
         WHERE NOT EXISTS (SELECT * FROM {out}_gpts q WHERE {key_and}q.id = p.id - 1);\n\
         DROP TABLE IF EXISTS {out}_ge;\n\
         CREATE TABLE {out}_ge AS SELECT {plead}p.id AS id FROM {out}_gpts p \
         WHERE NOT EXISTS (SELECT * FROM {out}_gpts q WHERE {key_and}q.id = p.id + 1);\n\
         DROP TABLE IF EXISTS {out}_gruns;\n\
         CREATE TABLE {out}_gruns AS SELECT {slead}s.id AS beg, MIN(e.id) AS end \
         FROM {out}_gs s, {out}_ge e WHERE {run_and}e.id >= s.id GROUP BY {group}s.id;\n\
         DROP TABLE IF EXISTS {out}_reach;\n\
         CREATE TABLE {out}_reach AS SELECT {rlead}n.n AS id, h2.act AS act \
         FROM {out}_gruns r, {h} h2, numbers n \
         WHERE {r_and2}h2.end >= r.beg AND h2.beg <= r.end + 1 \
         AND n.n >= r.beg AND n.n <= LEAST(r.end, h2.end);\n\
         DROP TABLE IF EXISTS {out}_allpts;\n\
         CREATE TABLE {out}_allpts AS \
         SELECT {cols}id AS id, act AS act FROM {out}_reach \
         UNION ALL \
         SELECT {klead}n.n AS id, h2.act AS act FROM {k} k, {h} h2, numbers n \
         WHERE {h_and}n.n >= h2.beg AND n.n <= h2.end;\n\
         DROP TABLE IF EXISTS {out}_maxpts;\n\
         CREATE TABLE {out}_maxpts AS SELECT {cols}id AS id, MAX(act) AS act \
         FROM {out}_allpts GROUP BY {cols}id;\n{coal}",
        group = qlead("s", &out_cols),
        cols = lead(&out_cols),
        r_and2 = {
            // The h side joins the run's binding on h's own columns only.
            let e = eq_conds("h2", "r", h_cols);
            if h_cols.is_empty() {
                String::new()
            } else {
                format!("{e} AND ")
            }
        },
        coal = coalesce_keyed(&format!("{out}_maxpts"), out, &out_cols),
    );
    s
}

/// Script computing `out = next l` over a keyed relation.
#[must_use]
pub fn next_table_script(l: &str, out: &str, cols: &[String]) -> String {
    let sel = cols_list("l", cols);
    let slead = if sel.is_empty() {
        String::new()
    } else {
        format!("{sel}, ")
    };
    format!(
        "DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT {slead}GREATEST(l.beg - 1, 1) AS beg, \
         l.end - 1 AS end, l.act AS act FROM {l} l WHERE l.end >= 2;"
    )
}

/// Script computing `out = eventually l` over a keyed relation
/// (per-binding suffix max, no point expansion).
#[must_use]
pub fn eventually_table_script(l: &str, out: &str, cols: &[String]) -> String {
    let k12 = eq_conds("h2", "h1", cols);
    let k12_and = if cols.is_empty() {
        String::new()
    } else {
        format!("{k12} AND ")
    };
    let sel1 = cols_list("h1", cols);
    let lead1 = if sel1.is_empty() {
        String::new()
    } else {
        format!("{sel1}, ")
    };
    let bs_eq = eq_conds("s", "b", cols);
    let bs_and = if cols.is_empty() {
        String::new()
    } else {
        format!("{bs_eq} AND ")
    };
    let selb = cols_list("b", cols);
    let leadb = if selb.is_empty() {
        String::new()
    } else {
        format!("{selb}, ")
    };
    format!(
        "DROP TABLE IF EXISTS {out}_sfx;\n\
         CREATE TABLE {out}_sfx AS SELECT {lead1}h1.end AS end, MAX(h2.act) AS act \
         FROM {l} h1, {l} h2 WHERE {k12_and}h2.end >= h1.end GROUP BY {group}h1.end;\n\
         DROP TABLE IF EXISTS {out}_beg;\n\
         CREATE TABLE {out}_beg AS \
         SELECT {lead1}h1.end AS end, MAX(h2.end) + 1 AS beg FROM {l} h1, {l} h2 \
         WHERE {k12_and}h2.end < h1.end GROUP BY {group}h1.end \
         UNION ALL \
         SELECT {lead1}h1.end AS end, 1 AS beg FROM {l} h1 \
         WHERE NOT EXISTS (SELECT * FROM {l} h2 WHERE {k12_and}h2.end < h1.end);\n\
         DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT {leadb}b.beg AS beg, b.end AS end, s.act AS act \
         FROM {out}_beg b, {out}_sfx s WHERE {bs_and}s.end = b.end;",
        group = qlead("h1", cols),
    )
}

/// Script collapsing `exists var`: drop the column, per-point max over the
/// remaining binding, re-coalesce.
#[must_use]
pub fn project_table_script(l: &str, out: &str, cols: &[String], var: &str) -> String {
    let remaining: Vec<String> = cols.iter().filter(|c| *c != var).cloned().collect();
    format!(
        "DROP TABLE IF EXISTS {out}_pts;\n\
         CREATE TABLE {out}_pts AS SELECT {lead}n.n AS id, t.act AS act FROM {l} t, numbers n \
         WHERE n.n >= t.beg AND n.n <= t.end;\n\
         DROP TABLE IF EXISTS {out}_max;\n\
         CREATE TABLE {out}_max AS SELECT {cols2}id AS id, MAX(act) AS act \
         FROM {out}_pts GROUP BY {cols2}id;\n{coal}",
        lead = {
            let c = cols_list("t", &remaining);
            if c.is_empty() {
                c
            } else {
                format!("{c}, ")
            }
        },
        cols2 = lead(&remaining),
        coal = coalesce_keyed(&format!("{out}_max"), out, &remaining),
    )
}

/// The SQL-based evaluation system for type (2) (and simpler) formulas:
/// the paper's "second system".
pub struct SqlType2System {
    db: Database,
    counter: usize,
    theta: f64,
}

/// An evaluated subformula: its relation name, binding columns and
/// maximum similarity.
#[derive(Debug, Clone)]
struct Rel {
    name: String,
    cols: Vec<String>,
    max: f64,
}

impl SqlType2System {
    /// Creates a system for sequences of length `n` with the given `until`
    /// threshold.
    pub fn new(n: u32, theta: f64) -> Result<SqlType2System, SqlError> {
        let mut db = Database::new();
        crate::translate::load_numbers(&mut db, n)?;
        Ok(SqlType2System {
            db,
            counter: 0,
            theta,
        })
    }

    /// Direct access to the underlying database (for inspection).
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Evaluates a type (2) (or simpler) formula given the similarity
    /// tables of its atomic units, in `atomic_units(f)` order. Returns the
    /// final similarity table.
    ///
    /// # Errors
    ///
    /// [`SqlError::Unsupported`] for freeze quantifiers, level modalities
    /// or general formulas; any engine error from the scripts.
    pub fn eval(
        &mut self,
        f: &Formula,
        atoms: &[SimilarityTable],
    ) -> Result<SimilarityTable, SqlError> {
        match classify(f) {
            FormulaClass::NonTemporal | FormulaClass::Type1 | FormulaClass::Type2 => {}
            other => {
                return Err(SqlError::Unsupported(format!(
                    "SQL translation covers type (2) formulas; this one is {other:?}"
                )))
            }
        }
        let expected = atomic_units(f).len();
        if atoms.len() != expected {
            return Err(SqlError::Unsupported(format!(
                "expected {expected} atomic tables, got {}",
                atoms.len()
            )));
        }
        let mut iter = atoms.iter();
        let rel = self.eval_rec(f, &mut iter)?;
        read_table(&self.db, &rel.name, &rel.cols, rel.max)
    }

    fn fresh(&mut self, what: &str) -> String {
        self.counter += 1;
        format!("t{}_{}", self.counter, what)
    }

    fn eval_rec<'a>(
        &mut self,
        f: &Formula,
        atoms: &mut impl Iterator<Item = &'a SimilarityTable>,
    ) -> Result<Rel, SqlError> {
        if is_pure(f) {
            let table = atoms
                .next()
                .ok_or_else(|| SqlError::Unsupported("missing atomic table".into()))?;
            let name = self.fresh("atom");
            load_table(&mut self.db, &name, table)?;
            return Ok(Rel {
                name,
                cols: table.obj_cols.clone(),
                max: table.max,
            });
        }
        match f {
            Formula::And(g, h) => {
                let rg = self.eval_rec(g, atoms)?;
                let rh = self.eval_rec(h, atoms)?;
                let out = self.fresh("and");
                let script = conjunction_table_script(&rg.name, &rh.name, &out, &rg.cols, &rh.cols);
                self.db.execute_script(&script)?;
                let (cols, _) = joined_cols(&rg.cols, &rh.cols);
                Ok(Rel {
                    name: out,
                    cols,
                    max: rg.max + rh.max,
                })
            }
            Formula::Until(g, h) => {
                let rg = self.eval_rec(g, atoms)?;
                let rh = self.eval_rec(h, atoms)?;
                let out = self.fresh("until");
                let cut = self.theta * rg.max - 1e-12;
                let script = until_table_script(&rg.name, &rh.name, &out, &rg.cols, &rh.cols, cut);
                self.db.execute_script(&script)?;
                let (cols, _) = joined_cols(&rg.cols, &rh.cols);
                Ok(Rel {
                    name: out,
                    cols,
                    max: rh.max,
                })
            }
            Formula::Next(g) => {
                let rg = self.eval_rec(g, atoms)?;
                let out = self.fresh("next");
                self.db
                    .execute_script(&next_table_script(&rg.name, &out, &rg.cols))?;
                Ok(Rel {
                    name: out,
                    cols: rg.cols,
                    max: rg.max,
                })
            }
            Formula::Eventually(g) => {
                let rg = self.eval_rec(g, atoms)?;
                let out = self.fresh("ev");
                self.db
                    .execute_script(&eventually_table_script(&rg.name, &out, &rg.cols))?;
                Ok(Rel {
                    name: out,
                    cols: rg.cols,
                    max: rg.max,
                })
            }
            Formula::Exists(var, g) => {
                let rg = self.eval_rec(g, atoms)?;
                if !rg.cols.contains(&var.0) {
                    return Ok(rg); // vacuous quantifier
                }
                let out = self.fresh("proj");
                self.db
                    .execute_script(&project_table_script(&rg.name, &out, &rg.cols, &var.0))?;
                let cols: Vec<String> = rg.cols.into_iter().filter(|c| *c != var.0).collect();
                Ok(Rel {
                    name: out,
                    cols,
                    max: rg.max,
                })
            }
            other => Err(SqlError::Unsupported(format!(
                "operator not in the type (2) translation: {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::list;
    use simvid_htl::parse;

    type RawRows = Vec<(Vec<u64>, Vec<(u32, u32, f64)>)>;

    fn table(cols: &[&str], rows: RawRows, max: f64) -> SimilarityTable {
        let mut t =
            SimilarityTable::new(cols.iter().map(|c| (*c).to_owned()).collect(), vec![], max);
        for (objs, tuples) in rows {
            t.push_row(Row {
                objs: objs.into_iter().map(ObjectId).collect(),
                ranges: vec![],
                list: std::sync::Arc::new(SimilarityList::from_tuples(tuples, max).unwrap()),
            });
        }
        t
    }

    /// Dense comparison of tables: same bindings, same per-position values.
    fn assert_tables_agree(a: &SimilarityTable, b: &SimilarityTable, n: usize) {
        assert_eq!(a.obj_cols, b.obj_cols, "column sets differ");
        let nonempty = |t: &SimilarityTable| t.rows.iter().filter(|r| !r.list.is_empty()).count();
        assert_eq!(
            nonempty(a),
            nonempty(b),
            "row counts differ: {a:?} vs {b:?}"
        );
        for ra in &a.rows {
            if ra.list.is_empty() {
                continue;
            }
            let rb = b
                .rows
                .iter()
                .find(|r| r.objs == ra.objs)
                .unwrap_or_else(|| panic!("binding {:?} missing", ra.objs));
            let (da, db) = (ra.list.to_dense(n), rb.list.to_dense(n));
            for (i, (x, y)) in da.iter().zip(&db).enumerate() {
                assert!(
                    (x - y).abs() < 1e-9,
                    "binding {:?}, position {}: {x} vs {y}",
                    ra.objs,
                    i + 1
                );
            }
        }
    }

    #[test]
    fn keyed_conjunction_matches_direct_join() {
        let a = table(
            &["x", "y"],
            vec![
                (vec![1, 2], vec![(1, 5, 2.0)]),
                (vec![1, 3], vec![(4, 8, 1.0)]),
            ],
            2.0,
        );
        let b = table(
            &["y", "z"],
            vec![
                (vec![2, 9], vec![(3, 6, 3.0)]),
                (vec![4, 9], vec![(1, 2, 3.0)]),
            ],
            3.0,
        );
        let direct = a.join(&b, 5.0, list::and);
        let mut sys = SqlType2System::new(10, 0.5).unwrap();
        let na = "a_tbl";
        let nb = "b_tbl";
        load_table(&mut sys.db, na, &a).unwrap();
        load_table(&mut sys.db, nb, &b).unwrap();
        let script = conjunction_table_script(na, nb, "o_tbl", &a.obj_cols, &b.obj_cols);
        sys.db.execute_script(&script).unwrap();
        let (cols, _) = joined_cols(&a.obj_cols, &b.obj_cols);
        let got = read_table(&sys.db, "o_tbl", &cols, 5.0).unwrap();
        assert_tables_agree(&direct, &got, 10);
    }

    #[test]
    fn keyed_until_matches_direct_join() {
        let g = table(
            &["x"],
            vec![(vec![1], vec![(1, 6, 1.0)]), (vec![2], vec![(2, 3, 0.2)])],
            1.0,
        );
        let h = table(
            &["x"],
            vec![(vec![1], vec![(7, 8, 4.0)]), (vec![2], vec![(8, 8, 2.0)])],
            4.0,
        );
        let theta = 0.5;
        let direct = g.join(&h, 4.0, |a, b| list::until(a, b, theta));
        let mut sys = SqlType2System::new(10, theta).unwrap();
        load_table(&mut sys.db, "g_tbl", &g).unwrap();
        load_table(&mut sys.db, "h_tbl", &h).unwrap();
        let cut = theta * g.max - 1e-12;
        let script = until_table_script("g_tbl", "h_tbl", "u_tbl", &g.obj_cols, &h.obj_cols, cut);
        sys.db.execute_script(&script).unwrap();
        let got = read_table(&sys.db, "u_tbl", &g.obj_cols, 4.0).unwrap();
        assert_tables_agree(&direct, &got, 10);
    }

    #[test]
    fn projection_matches_direct_collapse() {
        let t = table(
            &["x", "y"],
            vec![
                (vec![1, 2], vec![(1, 5, 2.0)]),
                (vec![1, 3], vec![(4, 8, 1.0)]),
                (vec![7, 3], vec![(2, 2, 3.0)]),
            ],
            3.0,
        );
        let direct = t.clone().project_out_obj("y");
        let mut sys = SqlType2System::new(10, 0.5).unwrap();
        load_table(&mut sys.db, "t_tbl", &t).unwrap();
        sys.db
            .execute_script(&project_table_script("t_tbl", "p_tbl", &t.obj_cols, "y"))
            .unwrap();
        let got = read_table(&sys.db, "p_tbl", &["x".to_owned()], 3.0).unwrap();
        assert_tables_agree(&direct, &got, 10);
    }

    #[test]
    fn full_type2_formula_via_sql_system() {
        // exists x . exists y . (p(x,y) and eventually q(y))
        let f = parse("exists x . exists y . p(x, y) and eventually q(y)").unwrap();
        let p = table(
            &["x", "y"],
            vec![
                (vec![1, 2], vec![(1, 3, 1.0)]),
                (vec![4, 5], vec![(2, 6, 0.5)]),
            ],
            1.0,
        );
        let q = table(
            &["y"],
            vec![(vec![2], vec![(5, 5, 2.0)]), (vec![5], vec![(9, 9, 1.0)])],
            2.0,
        );
        let mut sys = SqlType2System::new(10, 0.5).unwrap();
        let got = sys.eval(&f, &[p.clone(), q.clone()]).unwrap();

        // Direct computation for comparison.
        let qe = q.map_lists(2.0, list::eventually);
        let joined = p.join(&qe, 3.0, list::and);
        let direct = joined.project_out_obj("x").project_out_obj("y");
        assert_tables_agree(&direct, &got, 10);
        // The closed result is a single list.
        assert!(got.is_closed());
    }

    #[test]
    fn unsupported_classes_rejected() {
        let mut sys = SqlType2System::new(10, 0.5).unwrap();
        let f = parse("[h := height(z)] eventually height(z) > h").unwrap();
        assert!(matches!(sys.eval(&f, &[]), Err(SqlError::Unsupported(_))));
        let f = parse("at shot level p()").unwrap();
        assert!(sys.eval(&f, &[]).is_err());
    }

    #[test]
    fn keyed_eventually_and_next() {
        let t = table(
            &["x"],
            vec![
                (vec![1], vec![(3, 4, 2.0), (8, 8, 5.0)]),
                (vec![2], vec![(2, 2, 1.0)]),
            ],
            5.0,
        );
        let mut sys = SqlType2System::new(10, 0.5).unwrap();
        load_table(&mut sys.db, "t_ev", &t).unwrap();
        sys.db
            .execute_script(&eventually_table_script("t_ev", "o_ev", &t.obj_cols))
            .unwrap();
        let got = read_table(&sys.db, "o_ev", &t.obj_cols, 5.0).unwrap();
        let direct = t.clone().map_lists(5.0, list::eventually);
        assert_tables_agree(&direct, &got, 10);

        sys.db
            .execute_script(&next_table_script("t_ev", "o_nx", &t.obj_cols))
            .unwrap();
        let got = read_table(&sys.db, "o_nx", &t.obj_cols, 5.0).unwrap();
        let direct = t.map_lists(5.0, list::next);
        assert_tables_agree(&direct, &got, 10);
    }
}
