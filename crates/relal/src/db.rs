//! The [`Database`] facade: parse + execute statements against a catalog.

use crate::ast::Stmt;
use crate::expr::{eval, EvalCtx, RowScope};
use crate::parser::parse_script;
use crate::{Catalog, Schema, SqlError, Table, Value};

pub use crate::exec::ResultSet;

/// An in-memory database: a catalog plus a SQL entry point.
#[derive(Debug, Clone, Default)]
pub struct Database {
    cat: Catalog,
    /// Statements executed so far (all-time).
    stmt_count: usize,
}

impl Database {
    /// Empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.cat
    }

    /// Total statements executed.
    #[must_use]
    pub fn statements_executed(&self) -> usize {
        self.stmt_count
    }

    /// Executes one statement; returns rows for `SELECT`s.
    ///
    /// # Errors
    ///
    /// Any [`SqlError`] from parsing or execution.
    pub fn execute(&mut self, sql: &str) -> Result<Option<ResultSet>, SqlError> {
        let mut last = None;
        for stmt in parse_script(sql)? {
            last = self.execute_stmt(&stmt)?;
        }
        Ok(last)
    }

    /// Executes a `;`-separated script, returning the last `SELECT`'s rows.
    ///
    /// # Errors
    ///
    /// Any [`SqlError`]; execution stops at the first failure.
    pub fn execute_script(&mut self, sql: &str) -> Result<Option<ResultSet>, SqlError> {
        self.execute(sql)
    }

    /// Executes one `SELECT` and returns its rows together with one trace
    /// line per physical join decision ("hash join on 1 key(s)",
    /// "index range join on `n`", "nested loop", "scan") — a lightweight
    /// `EXPLAIN`.
    ///
    /// # Errors
    ///
    /// Any [`SqlError`]; non-`SELECT` statements are rejected.
    pub fn execute_traced(&mut self, sql: &str) -> Result<(ResultSet, Vec<String>), SqlError> {
        let stmt = crate::parser::parse_stmt(sql)?;
        let Stmt::Select(query) = stmt else {
            return Err(SqlError::Unsupported(
                "execute_traced expects a SELECT".into(),
            ));
        };
        self.stmt_count += 1;
        let mut trace = Vec::new();
        let rs = crate::exec::run_query_traced(&self.cat, &query, None, &mut trace)?;
        Ok((rs, trace))
    }

    /// Executes a parsed statement.
    ///
    /// # Errors
    ///
    /// Any [`SqlError`] from execution.
    pub fn execute_stmt(&mut self, stmt: &Stmt) -> Result<Option<ResultSet>, SqlError> {
        self.stmt_count += 1;
        match stmt {
            Stmt::CreateTable { name, cols } => {
                let schema = Schema::new(cols.iter().cloned());
                self.cat.create(name, Table::new(schema))?;
                Ok(None)
            }
            Stmt::CreateTableAs { name, query } => {
                let rs = crate::exec::run_query(&self.cat, query)?;
                let schema = Schema::new(rs.cols.iter().cloned().zip(rs.types.iter().copied()));
                let mut table = Table::new(schema);
                table.insert_many(rs.rows)?;
                self.cat.create(name, table)?;
                Ok(None)
            }
            Stmt::CreateIndex { table, col } => {
                self.cat.get_mut(table)?.create_index(col)?;
                Ok(None)
            }
            Stmt::DropTable { name, if_exists } => {
                self.cat.drop(name, *if_exists)?;
                Ok(None)
            }
            Stmt::Insert { table, rows } => {
                // Literal rows: evaluate in an empty scope.
                let scope = RowScope::default();
                let empty: Vec<Value> = Vec::new();
                let mut values = Vec::with_capacity(rows.len());
                for row in rows {
                    let ctx = EvalCtx {
                        cat: &self.cat,
                        scope: &scope,
                        row: &empty,
                        outer: None,
                        group: None,
                    };
                    values.push(
                        row.iter()
                            .map(|e| eval(e, &ctx))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                self.cat.get_mut(table)?.insert_many(values)?;
                Ok(None)
            }
            Stmt::InsertSelect { table, query } => {
                let rs = crate::exec::run_query(&self.cat, query)?;
                self.cat.get_mut(table)?.insert_many(rs.rows)?;
                Ok(None)
            }
            Stmt::Select(query) => Ok(Some(crate::exec::run_query(&self.cat, query)?)),
        }
    }

    /// Bulk-creates a table (bypassing SQL parsing, for loaders).
    ///
    /// # Errors
    ///
    /// [`SqlError::TableExists`] when the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), SqlError> {
        self.cat.create(name, Table::new(schema))
    }

    /// Bulk-inserts rows (bypassing SQL parsing, for loaders).
    ///
    /// # Errors
    ///
    /// Schema violations or a missing table.
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), SqlError> {
        self.cat.get_mut(name)?.insert_many(rows)
    }

    /// Drops a table if present (loader convenience).
    pub fn drop_if_exists(&mut self, name: &str) {
        let _ = self.cat.drop(name, true);
    }

    /// Builds a sorted index on a column (loader convenience).
    ///
    /// # Errors
    ///
    /// Missing table or column.
    pub fn create_index(&mut self, table: &str, col: &str) -> Result<(), SqlError> {
        self.cat.get_mut(table)?.create_index(col)
    }

    /// Reads a whole table (loader convenience).
    ///
    /// # Errors
    ///
    /// [`SqlError::NoSuchTable`].
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.cat.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColType;

    #[test]
    fn create_insert_select_round_trip() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (id INT, act FLOAT, tag TEXT);
             INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 0.5, 'a');",
        )
        .unwrap();
        let rs = db
            .execute("SELECT id, act FROM t WHERE tag = 'a' ORDER BY id")
            .unwrap()
            .unwrap();
        assert_eq!(rs.cols, vec!["id", "act"]);
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::Float(1.5)],
                vec![Value::Int(3), Value::Float(0.5)]
            ]
        );
    }

    #[test]
    fn hash_join_on_equality() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE a (x INT); INSERT INTO a VALUES (1), (2), (3);
             CREATE TABLE b (y INT, lbl TEXT);
             INSERT INTO b VALUES (2, 'two'), (3, 'three'), (4, 'four');",
        )
        .unwrap();
        let rs = db
            .execute("SELECT a.x, b.lbl FROM a, b WHERE a.x = b.y ORDER BY x")
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Str("two".into())]);
    }

    #[test]
    fn index_range_join_point_expansion() {
        let mut db = Database::new();
        db.execute("CREATE TABLE numbers (n INT)").unwrap();
        db.insert_rows("numbers", (1..=100i64).map(|i| vec![Value::Int(i)]))
            .unwrap();
        db.create_index("numbers", "n").unwrap();
        db.execute_script(
            "CREATE TABLE iv (beg INT, end INT, act FLOAT);
             INSERT INTO iv VALUES (10, 12, 1.5), (50, 51, 2.0);",
        )
        .unwrap();
        let rs = db
            .execute(
                "SELECT n.n AS id, i.act AS act FROM iv i, numbers n \
                 WHERE n.n >= i.beg AND n.n <= i.end ORDER BY id",
            )
            .unwrap()
            .unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![10, 11, 12, 50, 51]);
    }

    #[test]
    fn group_by_with_aggregates() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (k INT, v FLOAT);
             INSERT INTO t VALUES (1, 2.0), (1, 3.0), (2, 5.0);",
        )
        .unwrap();
        let rs = db
            .execute(
                "SELECT k, SUM(v) AS s, MAX(v) AS m, COUNT(*) AS c FROM t GROUP BY k ORDER BY k",
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(5.0),
                    Value::Float(3.0),
                    Value::Int(2)
                ],
                vec![
                    Value::Int(2),
                    Value::Float(5.0),
                    Value::Float(5.0),
                    Value::Int(1)
                ],
            ]
        );
    }

    #[test]
    fn union_all_concatenates() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE a (x INT); INSERT INTO a VALUES (1);
             CREATE TABLE b (x INT); INSERT INTO b VALUES (2);",
        )
        .unwrap();
        let rs = db
            .execute("SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x DESC")
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
    }

    #[test]
    fn correlated_not_exists_gaps_and_islands() {
        // The classic run-start detection from the translation scripts.
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE p (id INT, act FLOAT);
             INSERT INTO p VALUES (1, 1.0), (2, 1.0), (3, 2.0), (5, 2.0);",
        )
        .unwrap();
        let rs = db
            .execute(
                "SELECT s.id FROM p s WHERE NOT EXISTS \
                 (SELECT * FROM p q WHERE q.id = s.id - 1 AND q.act = s.act) ORDER BY s.id",
            )
            .unwrap()
            .unwrap();
        // Run starts: 1 (act 1), 3 (act changes), 5 (gap).
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn create_table_as_and_insert_select() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (5);
             CREATE TABLE u AS SELECT x + 1 AS y FROM t;
             INSERT INTO u SELECT x FROM t;",
        )
        .unwrap();
        let rs = db.execute("SELECT y FROM u ORDER BY y").unwrap().unwrap();
        let ys: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ys, vec![1, 2, 5, 6]);
        assert_eq!(db.table("u").unwrap().schema.cols[0].ty, ColType::Int);
    }

    #[test]
    fn least_greatest_in_select() {
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (a INT, b INT); INSERT INTO t VALUES (3, 7);")
            .unwrap();
        let rs = db
            .execute("SELECT LEAST(a, b), GREATEST(a, b), LEAST(a + 10, b) FROM t")
            .unwrap()
            .unwrap();
        assert_eq!(
            rs.rows[0],
            vec![Value::Int(3), Value::Int(7), Value::Int(7)]
        );
    }

    #[test]
    fn select_star() {
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (a INT, b TEXT); INSERT INTO t VALUES (1, 'x');")
            .unwrap();
        let rs = db.execute("SELECT * FROM t").unwrap().unwrap();
        assert_eq!(rs.cols, vec!["a", "b"]);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Str("x".into())]);
    }

    #[test]
    fn errors_surface() {
        let mut db = Database::new();
        assert!(matches!(
            db.execute("SELECT x FROM missing"),
            Err(SqlError::NoSuchTable(_))
        ));
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.execute("SELECT nope FROM t").is_err());
        assert!(matches!(
            db.execute("CREATE TABLE t (x INT)"),
            Err(SqlError::TableExists(_))
        ));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (4), (9);")
            .unwrap();
        let rs = db
            .execute("SELECT MAX(x), COUNT(*) FROM t")
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(9), Value::Int(2)]]);
    }

    #[test]
    fn drop_table_if_exists() {
        let mut db = Database::new();
        db.execute("DROP TABLE IF EXISTS ghost").unwrap();
        assert!(db.execute("DROP TABLE ghost").is_err());
    }
}
