//! Expression evaluation and static type inference.

use crate::ast::{AggFunc, BinOp, Expr};
use crate::{Catalog, ColType, SqlError, Value};

/// One column of a row scope: which table binding it came from, its name
/// and type.
#[derive(Debug, Clone)]
pub(crate) struct ScopeCol {
    pub alias: String,
    pub name: String,
    pub ty: ColType,
}

/// The flattened column layout of the rows being processed.
#[derive(Debug, Clone, Default)]
pub(crate) struct RowScope {
    pub cols: Vec<ScopeCol>,
}

impl RowScope {
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlError> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let hit = match qualifier {
                Some(q) => c.alias == q && c.name == name,
                None => c.name == name,
            };
            if hit {
                if found.is_some() {
                    return Err(SqlError::Column(format!("ambiguous column `{name}`")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            SqlError::Column(match qualifier {
                Some(q) => format!("no column `{q}.{name}`"),
                None => format!("no column `{name}`"),
            })
        })
    }

    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.resolve(qualifier, name).ok()
    }
}

/// Evaluation context: the current row, its scope, the catalog (for
/// subqueries), an optional outer context (correlation), and the rows of
/// the current group (for aggregates).
pub(crate) struct EvalCtx<'a> {
    pub cat: &'a Catalog,
    pub scope: &'a RowScope,
    pub row: &'a [Value],
    pub outer: Option<&'a EvalCtx<'a>>,
    pub group: Option<&'a [Vec<Value>]>,
}

impl EvalCtx<'_> {
    fn with_row<'b>(&'b self, row: &'b [Value]) -> EvalCtx<'b> {
        EvalCtx {
            cat: self.cat,
            scope: self.scope,
            row,
            outer: self.outer,
            group: None,
        }
    }
}

pub(crate) fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
    }
}

fn bool_val(b: bool) -> Value {
    Value::Int(i64::from(b))
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, SqlError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    return Err(SqlError::Type("division by zero".into()));
                }
                Value::Float(*a as f64 / *b as f64)
            }
            _ => unreachable!("arith ops only"),
        });
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(SqlError::Type(format!(
            "arithmetic on non-numbers: {l} and {r}"
        )));
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                return Err(SqlError::Type("division by zero".into()));
            }
            Value::Float(a / b)
        }
        _ => unreachable!("arith ops only"),
    })
}

/// Evaluates an expression in a context.
pub(crate) fn eval(expr: &Expr, ctx: &EvalCtx<'_>) -> Result<Value, SqlError> {
    match expr {
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Float(f) => Ok(Value::Float(*f)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Star => Err(SqlError::Unsupported(
            "`*` outside COUNT(*) / SELECT".into(),
        )),
        Expr::Col { qualifier, name } => match ctx.scope.try_resolve(qualifier.as_deref(), name) {
            Some(i) => Ok(ctx.row[i].clone()),
            None => match ctx.outer {
                Some(outer) => eval(expr, outer),
                None => Err(SqlError::Column(format!(
                    "cannot resolve column `{}`",
                    name
                ))),
            },
        },
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::And => {
                if !truthy(&eval(lhs, ctx)?) {
                    return Ok(bool_val(false));
                }
                Ok(bool_val(truthy(&eval(rhs, ctx)?)))
            }
            BinOp::Or => {
                if truthy(&eval(lhs, ctx)?) {
                    return Ok(bool_val(true));
                }
                Ok(bool_val(truthy(&eval(rhs, ctx)?)))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = eval(lhs, ctx)?;
                let r = eval(rhs, ctx)?;
                arith(*op, &l, &r)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval(lhs, ctx)?;
                let r = eval(rhs, ctx)?;
                let Some(ord) = l.sql_cmp(&r) else {
                    return Err(SqlError::Type(format!("cannot compare {l} with {r}")));
                };
                use std::cmp::Ordering::*;
                Ok(bool_val(match op {
                    BinOp::Eq => ord == Equal,
                    BinOp::Ne => ord != Equal,
                    BinOp::Lt => ord == Less,
                    BinOp::Le => ord != Greater,
                    BinOp::Gt => ord == Greater,
                    BinOp::Ge => ord != Less,
                    _ => unreachable!(),
                }))
            }
        },
        Expr::Not(e) => Ok(bool_val(!truthy(&eval(e, ctx)?))),
        Expr::Func { name, args } => match name.as_str() {
            "least" | "greatest" => {
                if args.is_empty() {
                    return Err(SqlError::Type(format!("{name} needs arguments")));
                }
                let mut best = eval(&args[0], ctx)?;
                for a in &args[1..] {
                    let v = eval(a, ctx)?;
                    let Some(ord) = v.sql_cmp(&best) else {
                        return Err(SqlError::Type(format!("cannot compare {v} with {best}")));
                    };
                    let take = if name == "least" {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    };
                    if take {
                        best = v;
                    }
                }
                Ok(best)
            }
            "abs" => match eval(&args[0], ctx)? {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                v => Err(SqlError::Type(format!("ABS of non-number {v}"))),
            },
            other => Err(SqlError::Unsupported(format!("function `{other}`"))),
        },
        Expr::Agg { func, arg } => {
            let Some(group) = ctx.group else {
                return Err(SqlError::Type("aggregate outside GROUP BY context".into()));
            };
            eval_agg(*func, arg.as_deref(), group, ctx)
        }
        Expr::Exists { query, negated } => {
            let rs = crate::exec::run_query_outer(ctx.cat, query, Some(ctx))?;
            Ok(bool_val(rs.rows.is_empty() == *negated))
        }
    }
}

fn eval_agg(
    func: AggFunc,
    arg: Option<&Expr>,
    group: &[Vec<Value>],
    ctx: &EvalCtx<'_>,
) -> Result<Value, SqlError> {
    match func {
        AggFunc::Count => Ok(Value::Int(group.len() as i64)),
        AggFunc::Sum => {
            let arg = arg.ok_or_else(|| SqlError::Type("SUM needs an argument".into()))?;
            let mut int_sum = 0i64;
            let mut float_sum = 0.0f64;
            let mut any_float = false;
            for row in group {
                match eval(arg, &ctx.with_row(row))? {
                    Value::Int(i) => {
                        int_sum += i;
                        float_sum += i as f64;
                    }
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    v => return Err(SqlError::Type(format!("SUM of non-number {v}"))),
                }
            }
            Ok(if any_float {
                Value::Float(float_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let arg = arg.ok_or_else(|| SqlError::Type("MIN/MAX need an argument".into()))?;
            let mut best: Option<Value> = None;
            for row in group {
                let v = eval(arg, &ctx.with_row(row))?;
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let Some(ord) = v.sql_cmp(&b) else {
                            return Err(SqlError::Type(format!("cannot compare {v} with {b}")));
                        };
                        let take = if func == AggFunc::Min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or_else(|| SqlError::Type("MIN/MAX over an empty group".into()))
        }
    }
}

/// Statically infers the result type of an expression over a scope.
pub(crate) fn infer_type(expr: &Expr, scope: &RowScope) -> Result<ColType, SqlError> {
    Ok(match expr {
        Expr::Int(_) => ColType::Int,
        Expr::Float(_) => ColType::Float,
        Expr::Str(_) => ColType::Text,
        Expr::Star => return Err(SqlError::Unsupported("`*` has no type".into())),
        Expr::Col { qualifier, name } => match scope.try_resolve(qualifier.as_deref(), name) {
            Some(i) => scope.cols[i].ty,
            // Correlated reference: assume float (safe for our numerics).
            None => ColType::Float,
        },
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if infer_type(lhs, scope)? == ColType::Float
                    || infer_type(rhs, scope)? == ColType::Float
                {
                    ColType::Float
                } else {
                    ColType::Int
                }
            }
            BinOp::Div => ColType::Float,
            _ => ColType::Int,
        },
        Expr::Not(_) | Expr::Exists { .. } => ColType::Int,
        Expr::Func { name, args } => match name.as_str() {
            "least" | "greatest" => {
                let mut ty = ColType::Int;
                for a in args {
                    if infer_type(a, scope)? == ColType::Float {
                        ty = ColType::Float;
                    }
                }
                ty
            }
            "abs" => infer_type(&args[0], scope)?,
            other => return Err(SqlError::Unsupported(format!("function `{other}`"))),
        },
        Expr::Agg { func, arg } => match func {
            AggFunc::Count => ColType::Int,
            _ => match arg {
                Some(a) => infer_type(a, scope)?,
                None => ColType::Int,
            },
        },
    })
}

/// Collects all column references of an expression (not descending into
/// EXISTS subqueries — those resolve in their own scope).
pub(crate) fn col_refs<'e>(expr: &'e Expr, out: &mut Vec<(Option<&'e str>, &'e str)>) {
    match expr {
        Expr::Col { qualifier, name } => out.push((qualifier.as_deref(), name)),
        Expr::Bin { lhs, rhs, .. } => {
            col_refs(lhs, out);
            col_refs(rhs, out);
        }
        Expr::Not(e) => col_refs(e, out),
        Expr::Func { args, .. } => {
            for a in args {
                col_refs(a, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                col_refs(a, out);
            }
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Str(_) | Expr::Star | Expr::Exists { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> RowScope {
        RowScope {
            cols: vec![
                ScopeCol {
                    alias: "t".into(),
                    name: "id".into(),
                    ty: ColType::Int,
                },
                ScopeCol {
                    alias: "t".into(),
                    name: "act".into(),
                    ty: ColType::Float,
                },
            ],
        }
    }

    fn eval_str(expr: &Expr, row: &[Value]) -> Value {
        let cat = Catalog::new();
        let s = scope();
        let ctx = EvalCtx {
            cat: &cat,
            scope: &s,
            row,
            outer: None,
            group: None,
        };
        eval(expr, &ctx).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let row = vec![Value::Int(4), Value::Float(2.5)];
        let e = Expr::bin(BinOp::Add, Expr::col("id"), Expr::Int(1));
        assert_eq!(eval_str(&e, &row), Value::Int(5));
        let e = Expr::bin(BinOp::Mul, Expr::col("act"), Expr::Int(2));
        assert_eq!(eval_str(&e, &row), Value::Float(5.0));
        let e = Expr::bin(BinOp::Ge, Expr::col("id"), Expr::Float(3.5));
        assert_eq!(eval_str(&e, &row), Value::Int(1));
    }

    #[test]
    fn logic_short_circuits() {
        let row = vec![Value::Int(1), Value::Float(0.0)];
        // `act != 0 AND (1/0 = 1)` — rhs would error, but lhs is false.
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Ne, Expr::col("act"), Expr::Int(0)),
            Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0)),
                Expr::Int(1),
            ),
        );
        assert_eq!(eval_str(&e, &row), Value::Int(0));
    }

    #[test]
    fn least_and_greatest() {
        let row = vec![Value::Int(4), Value::Float(2.5)];
        let e = Expr::Func {
            name: "least".into(),
            args: vec![Expr::col("id"), Expr::col("act")],
        };
        assert_eq!(eval_str(&e, &row), Value::Float(2.5));
        let e = Expr::Func {
            name: "greatest".into(),
            args: vec![Expr::col("id"), Expr::Int(10)],
        };
        assert_eq!(eval_str(&e, &row), Value::Int(10));
    }

    #[test]
    fn ambiguous_columns_error() {
        let s = RowScope {
            cols: vec![
                ScopeCol {
                    alias: "a".into(),
                    name: "x".into(),
                    ty: ColType::Int,
                },
                ScopeCol {
                    alias: "b".into(),
                    name: "x".into(),
                    ty: ColType::Int,
                },
            ],
        };
        assert!(s.resolve(None, "x").is_err());
        assert_eq!(s.resolve(Some("b"), "x"), Ok(1));
    }

    #[test]
    fn type_inference() {
        let s = scope();
        let e = Expr::bin(BinOp::Add, Expr::col("id"), Expr::Int(1));
        assert_eq!(infer_type(&e, &s).unwrap(), ColType::Int);
        let e = Expr::bin(BinOp::Add, Expr::col("id"), Expr::col("act"));
        assert_eq!(infer_type(&e, &s).unwrap(), ColType::Float);
        let e = Expr::Agg {
            func: AggFunc::Count,
            arg: None,
        };
        assert_eq!(infer_type(&e, &s).unwrap(), ColType::Int);
    }

    #[test]
    fn division_by_zero_errors() {
        let row = vec![Value::Int(1), Value::Float(1.0)];
        let cat = Catalog::new();
        let s = scope();
        let ctx = EvalCtx {
            cat: &cat,
            scope: &s,
            row: &row,
            outer: None,
            group: None,
        };
        let e = Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0));
        assert!(eval(&e, &ctx).is_err());
    }
}
