//! SQL tokenizer. Keywords are case-insensitive; identifiers are folded to
//! lowercase.

use crate::SqlError;

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl Tok {
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(i) => format!("integer {i}"),
            Tok::Float(f) => format!("number {f}"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Star => "`*`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

pub(crate) fn lex(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(Spanned {
                    tok: Tok::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                toks.push(Spanned {
                    tok: Tok::RParen,
                    pos: i,
                });
                i += 1;
            }
            b',' => {
                toks.push(Spanned {
                    tok: Tok::Comma,
                    pos: i,
                });
                i += 1;
            }
            b'.' => {
                toks.push(Spanned {
                    tok: Tok::Dot,
                    pos: i,
                });
                i += 1;
            }
            b';' => {
                toks.push(Spanned {
                    tok: Tok::Semi,
                    pos: i,
                });
                i += 1;
            }
            b'*' => {
                toks.push(Spanned {
                    tok: Tok::Star,
                    pos: i,
                });
                i += 1;
            }
            b'+' => {
                toks.push(Spanned {
                    tok: Tok::Plus,
                    pos: i,
                });
                i += 1;
            }
            b'-' => {
                toks.push(Spanned {
                    tok: Tok::Minus,
                    pos: i,
                });
                i += 1;
            }
            b'/' => {
                toks.push(Spanned {
                    tok: Tok::Slash,
                    pos: i,
                });
                i += 1;
            }
            b'=' => {
                toks.push(Spanned {
                    tok: Tok::Eq,
                    pos: i,
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::parse(i, "expected `!=`"));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    toks.push(Spanned {
                        tok: Tok::Le,
                        pos: i,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    toks.push(Spanned {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                }
                _ => {
                    toks.push(Spanned {
                        tok: Tok::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Spanned {
                        tok: Tok::Ge,
                        pos: i,
                    });
                    i += 2;
                } else {
                    toks.push(Spanned {
                        tok: Tok::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::parse(start, "unterminated string")),
                        Some(b'\'') => {
                            // Doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch = input[i..].chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Spanned {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                }
                let mut is_float = false;
                if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    is_float = true;
                    i += 1;
                    while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| SqlError::parse(start, format!("bad number `{text}`")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| SqlError::parse(start, format!("bad integer `{text}`")))?,
                    )
                };
                toks.push(Spanned { tok, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while bytes
                    .get(i)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    i += 1;
                }
                toks.push(Spanned {
                    tok: Tok::Ident(input[start..i].to_ascii_lowercase()),
                    pos: start,
                });
            }
            _ => {
                return Err(SqlError::parse(
                    i,
                    format!(
                        "unexpected character `{}`",
                        &input[i..].chars().next().unwrap()
                    ),
                ));
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        pos: input.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_fold_to_lowercase_idents() {
        assert_eq!(
            kinds("SELECT foo FROM Bar"),
            vec![
                Tok::Ident("select".into()),
                Tok::Ident("foo".into()),
                Tok::Ident("from".into()),
                Tok::Ident("bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * /"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_doubled_quotes() {
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert!(lex("'open").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment here\n 2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }
}
