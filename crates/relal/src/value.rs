//! Runtime values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A SQL value. The engine has no NULL: every column of every row holds a
/// concrete value (the translation scripts never need missing data).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (never NaN; arithmetic producing NaN errors instead).
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Numeric view, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Integer view, if an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL comparison: numerics compare numerically across Int/Float;
    /// strings compare lexicographically; mixed string/number is an error
    /// (`None`).
    #[must_use]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// SQL equality (numeric coercion applies).
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A hashable key over values, used by hash joins, `GROUP BY` and
/// `EXISTS` probes. Numeric values hash by their `f64` image so that
/// `Int(1)` and `Float(1.0)` collide (matching [`Value::sql_eq`]).
#[derive(Debug, Clone)]
pub struct Key(pub Vec<Value>);

impl PartialEq for Key {
    fn eq(&self, other: &Key) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a.sql_eq(b))
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            match v {
                Value::Str(s) => {
                    state.write_u8(2);
                    s.hash(state);
                }
                other => {
                    state.write_u8(1);
                    let f = other.as_f64().expect("numeric");
                    // Normalise -0.0 so it collides with 0.0.
                    let f = if f == 0.0 { 0.0 } else { f };
                    state.write_u64(f.to_bits());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn numeric_coercion_in_comparisons() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn keys_collide_across_numeric_types() {
        let mut set = HashSet::new();
        set.insert(Key(vec![Value::Int(1), Value::Str("x".into())]));
        assert!(set.contains(&Key(vec![Value::Float(1.0), Value::Str("x".into())])));
        assert!(!set.contains(&Key(vec![Value::Float(1.5), Value::Str("x".into())])));
    }

    #[test]
    fn negative_zero_normalised() {
        let mut set = HashSet::new();
        set.insert(Key(vec![Value::Float(0.0)]));
        assert!(set.contains(&Key(vec![Value::Float(-0.0)])));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Str("a".into()).to_string(), "'a'");
    }
}
