//! SQL abstract syntax.

use crate::ColType;

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        cols: Vec<(String, ColType)>,
    },
    /// `CREATE TABLE name AS SELECT …`
    CreateTableAs {
        /// Table name.
        name: String,
        /// Defining query.
        query: Query,
    },
    /// `CREATE INDEX ON table (col)`
    CreateIndex {
        /// Table to index.
        table: String,
        /// Column to index.
        col: String,
    },
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the error when absent.
        if_exists: bool,
    },
    /// `INSERT INTO t VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `INSERT INTO t SELECT …`
    InsertSelect {
        /// Target table.
        table: String,
        /// Source query.
        query: Query,
    },
    /// A bare query.
    Select(Query),
}

/// A query: one or more `UNION ALL` bodies plus an optional ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The select bodies, concatenated by `UNION ALL`.
    pub bodies: Vec<SelectBody>,
    /// `ORDER BY` keys (expression over result columns, ascending flag).
    pub order_by: Vec<(Expr, bool)>,
}

/// One `SELECT … FROM … WHERE … GROUP BY …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBody {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` tables (comma joins).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression (or `Expr::Star`).
    pub expr: Expr,
    /// `AS` alias.
    pub alias: Option<String>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in the row context.
    #[must_use]
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified by a table alias.
    Col {
        /// Table alias.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `*` (only valid in `COUNT(*)` and `SELECT *` / `EXISTS (SELECT *)`).
    Star,
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Scalar function (`LEAST`, `GREATEST`, `ABS`).
    Func {
        /// Function name (lowercase).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate application.
    Agg {
        /// The aggregate.
        func: AggFunc,
        /// The argument; `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// Whether negated.
        negated: bool,
    },
}

impl Expr {
    /// Unqualified column reference.
    #[must_use]
    pub fn col(name: &str) -> Expr {
        Expr::Col {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    /// Qualified column reference.
    #[must_use]
    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Col {
            qualifier: Some(q.to_owned()),
            name: name.to_owned(),
        }
    }

    /// Binary operation.
    #[must_use]
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Whether this expression tree contains an aggregate.
    #[must_use]
    pub fn has_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Bin { lhs, rhs, .. } => lhs.has_agg() || rhs.has_agg(),
            Expr::Not(e) => e.has_agg(),
            Expr::Func { args, .. } => args.iter().any(Expr::has_agg),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "nums".into(),
            alias: Some("n".into()),
        };
        assert_eq!(t.binding(), "n");
        let t = TableRef {
            table: "nums".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "nums");
    }

    #[test]
    fn has_agg_walks_the_tree() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Int(1),
            Expr::Agg {
                func: AggFunc::Max,
                arg: Some(Box::new(Expr::col("x"))),
            },
        );
        assert!(e.has_agg());
        assert!(!Expr::col("x").has_agg());
    }
}
