//! Recursive-descent SQL parser.

use crate::ast::{AggFunc, BinOp, Expr, Query, SelectBody, SelectItem, Stmt, TableRef};
use crate::lexer::{lex, Spanned, Tok};
use crate::{ColType, SqlError};

/// Parses a script of `;`-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Stmt>, SqlError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, i: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.peek_is(&Tok::Semi) {
            p.bump();
        }
        if matches!(p.peek(), Tok::Eof) {
            break;
        }
        stmts.push(p.stmt()?);
        if !p.peek_is(&Tok::Semi) && !matches!(p.peek(), Tok::Eof) {
            return Err(SqlError::parse(
                p.pos(),
                format!(
                    "expected `;` or end of script, found {}",
                    p.peek().describe()
                ),
            ));
        }
    }
    Ok(stmts)
}

/// Parses a single statement.
pub fn parse_stmt(input: &str) -> Result<Stmt, SqlError> {
    let mut stmts = parse_script(input)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(SqlError::parse(
            0,
            format!("expected one statement, found {n}"),
        )),
    }
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek_is(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SqlError> {
        if self.peek_is(t) {
            self.bump();
            Ok(())
        } else {
            Err(SqlError::parse(
                self.pos(),
                format!(
                    "expected {}, found {}",
                    t.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    /// Consumes the given keyword (lowercased identifier).
    fn keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(SqlError::parse(
                self.pos(),
                format!(
                    "expected `{}`, found {}",
                    kw.to_uppercase(),
                    other.describe()
                ),
            )),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(SqlError::parse(
                pos,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, SqlError> {
        if self.at_keyword("create") {
            self.bump();
            if self.eat_keyword("index") {
                self.keyword("on")?;
                let table = self.ident()?;
                self.expect(&Tok::LParen)?;
                let col = self.ident()?;
                self.expect(&Tok::RParen)?;
                return Ok(Stmt::CreateIndex { table, col });
            }
            self.keyword("table")?;
            let name = self.ident()?;
            if self.eat_keyword("as") {
                let query = self.query()?;
                return Ok(Stmt::CreateTableAs { name, query });
            }
            self.expect(&Tok::LParen)?;
            let mut cols = Vec::new();
            loop {
                let col = self.ident()?;
                let ty_pos = self.pos();
                let ty = match self.ident()?.as_str() {
                    "int" | "integer" => ColType::Int,
                    "float" | "real" | "double" => ColType::Float,
                    "text" | "varchar" | "char" => ColType::Text,
                    other => {
                        return Err(SqlError::parse(ty_pos, format!("unknown type `{other}`")))
                    }
                };
                cols.push((col, ty));
                if !self.peek_is(&Tok::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(&Tok::RParen)?;
            return Ok(Stmt::CreateTable { name, cols });
        }
        if self.at_keyword("drop") {
            self.bump();
            self.keyword("table")?;
            let if_exists = if self.eat_keyword("if") {
                self.keyword("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.at_keyword("insert") {
            self.bump();
            self.keyword("into")?;
            let table = self.ident()?;
            if self.at_keyword("values") {
                self.bump();
                let mut rows = Vec::new();
                loop {
                    self.expect(&Tok::LParen)?;
                    let mut row = Vec::new();
                    loop {
                        row.push(self.expr()?);
                        if !self.peek_is(&Tok::Comma) {
                            break;
                        }
                        self.bump();
                    }
                    self.expect(&Tok::RParen)?;
                    rows.push(row);
                    if !self.peek_is(&Tok::Comma) {
                        break;
                    }
                    self.bump();
                }
                return Ok(Stmt::Insert { table, rows });
            }
            let query = self.query()?;
            return Ok(Stmt::InsertSelect { table, query });
        }
        if self.at_keyword("select") {
            return Ok(Stmt::Select(self.query()?));
        }
        Err(SqlError::parse(
            self.pos(),
            format!("expected a statement, found {}", self.peek().describe()),
        ))
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        let mut bodies = vec![self.select_body()?];
        while self.at_keyword("union") {
            self.bump();
            self.keyword("all")?;
            bodies.push(self.select_body()?);
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.keyword("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_keyword("desc") {
                    false
                } else {
                    let _ = self.eat_keyword("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.peek_is(&Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        Ok(Query { bodies, order_by })
    }

    fn select_body(&mut self) -> Result<SelectBody, SqlError> {
        self.keyword("select")?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_keyword("as") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.peek_is(&Tok::Comma) {
                break;
            }
            self.bump();
        }
        let mut from = Vec::new();
        if self.eat_keyword("from") {
            loop {
                let table = self.ident()?;
                // Optional alias: a bare identifier that is not a clause
                // keyword.
                let alias = match self.peek() {
                    Tok::Ident(s)
                        if !matches!(
                            s.as_str(),
                            "where" | "group" | "order" | "union" | "on" | "as"
                        ) =>
                    {
                        Some(self.ident()?)
                    }
                    Tok::Ident(s) if s == "as" => {
                        self.bump();
                        Some(self.ident()?)
                    }
                    _ => None,
                };
                from.push(TableRef { table, alias });
                if !self.peek_is(&Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let where_ = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.keyword("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.peek_is(&Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        Ok(SelectBody {
            items,
            from,
            where_,
            group_by,
        })
    }

    // Expression precedence: OR < AND < NOT < cmp < add < mul < unary.
    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.not_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.not_expr()?;
            e = Expr::bin(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.at_keyword("not") {
            self.bump();
            if self.at_keyword("exists") {
                return self.exists_expr(true);
            }
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        if self.at_keyword("exists") {
            return self.exists_expr(false);
        }
        self.cmp_expr()
    }

    fn exists_expr(&mut self, negated: bool) -> Result<Expr, SqlError> {
        self.keyword("exists")?;
        self.expect(&Tok::LParen)?;
        let query = self.query()?;
        self.expect(&Tok::RParen)?;
        Ok(Expr::Exists {
            query: Box::new(query),
            negated,
        })
    }

    fn cmp_expr(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, SqlError> {
        if self.peek_is(&Tok::Minus) {
            self.bump();
            let e = self.unary_expr()?;
            return Ok(Expr::bin(BinOp::Sub, Expr::Int(0), e));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Int(i) => Ok(Expr::Int(i)),
            Tok::Float(f) => Ok(Expr::Float(f)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Star => Ok(Expr::Star),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // Aggregate or scalar function call?
                if self.peek_is(&Tok::LParen) {
                    let agg = match name.as_str() {
                        "min" => Some(AggFunc::Min),
                        "max" => Some(AggFunc::Max),
                        "sum" => Some(AggFunc::Sum),
                        "count" => Some(AggFunc::Count),
                        _ => None,
                    };
                    self.bump();
                    if let Some(func) = agg {
                        if self.peek_is(&Tok::Star) {
                            self.bump();
                            self.expect(&Tok::RParen)?;
                            return Ok(Expr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    let mut args = Vec::new();
                    if !self.peek_is(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.peek_is(&Tok::Comma) {
                                break;
                            }
                            self.bump();
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    return Ok(Expr::Func { name, args });
                }
                // Qualified column?
                if self.peek_is(&Tok::Dot) {
                    self.bump();
                    if self.peek_is(&Tok::Star) {
                        self.bump();
                        // `t.*` — treated like `*`.
                        return Ok(Expr::Star);
                    }
                    let col = self.ident()?;
                    return Ok(Expr::Col {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Col {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::parse(
                pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_and_insert() {
        let stmts = parse_script(
            "CREATE TABLE t (id INT, act FLOAT); INSERT INTO t VALUES (1, 2.5), (2, 3.0);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(stmts[0], Stmt::CreateTable { .. }));
        match &stmts[1] {
            Stmt::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_everything() {
        let s = parse_stmt(
            "SELECT n.n AS id, MAX(a.act) AS act FROM numbers n, lists a \
             WHERE n.n >= a.beg AND n.n <= a.end GROUP BY n.n ORDER BY id DESC",
        )
        .unwrap();
        let Stmt::Select(q) = s else {
            panic!("not a select")
        };
        assert_eq!(q.bodies.len(), 1);
        let b = &q.bodies[0];
        assert_eq!(b.items.len(), 2);
        assert_eq!(b.from.len(), 2);
        assert_eq!(b.from[1].binding(), "a");
        assert_eq!(b.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].1, "descending");
    }

    #[test]
    fn parses_union_all() {
        let s = parse_stmt("SELECT id FROM a UNION ALL SELECT id FROM b").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert_eq!(q.bodies.len(), 2);
    }

    #[test]
    fn parses_not_exists() {
        let s = parse_stmt(
            "SELECT s.id FROM sums s WHERE NOT EXISTS \
             (SELECT * FROM sums p WHERE p.id = s.id - 1 AND p.act = s.act)",
        )
        .unwrap();
        let Stmt::Select(q) = s else { panic!() };
        match q.bodies[0].where_.as_ref().unwrap() {
            Expr::Exists { negated, .. } => assert!(*negated),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_table_as_and_index() {
        let stmts = parse_script(
            "CREATE TABLE out AS SELECT 1 AS x; CREATE INDEX ON numbers (n); \
             DROP TABLE IF EXISTS out;",
        )
        .unwrap();
        assert!(matches!(stmts[0], Stmt::CreateTableAs { .. }));
        assert!(matches!(stmts[1], Stmt::CreateIndex { .. }));
        assert!(matches!(
            stmts[2],
            Stmt::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_scalar_functions_and_arith() {
        let s = parse_stmt("SELECT LEAST(a + 1, b * 2), GREATEST(a, 1) FROM t").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(matches!(
            q.bodies[0].items[0].expr,
            Expr::Func { ref name, .. } if name == "least"
        ));
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_stmt("select X from T where X > 1").is_ok());
        assert!(parse_stmt("SeLeCt x FrOm t").is_ok());
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse_stmt("SELECT )").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse_stmt("CREATE TABLE t (x BLOB)").unwrap_err();
        assert!(err.to_string().contains("unknown type"));
    }

    #[test]
    fn insert_select() {
        let s = parse_stmt("INSERT INTO t SELECT a FROM b").unwrap();
        assert!(matches!(s, Stmt::InsertSelect { .. }));
    }

    #[test]
    fn unary_minus() {
        let s = parse_stmt("SELECT -x FROM t").unwrap();
        let Stmt::Select(q) = s else { panic!() };
        assert!(matches!(
            q.bodies[0].items[0].expr,
            Expr::Bin { op: BinOp::Sub, .. }
        ));
    }
}
