//! `simvid-relal`: a small in-memory relational engine with a 1996-era SQL
//! subset, plus the HTL→SQL translation used as the paper's baseline.
//!
//! The paper's second system evaluates HTL temporal operators "by
//! translating the formulas into SQL queries" executed on a commercial
//! RDBMS (Sybase on SUN workstations). Sybase is proprietary and long
//! obsolete, so this crate substitutes a from-scratch engine that executes
//! the same *kind* of statement sequences a mid-90s system would:
//!
//! * `CREATE TABLE … AS SELECT`, `INSERT INTO … SELECT`, multi-table
//!   `FROM` with `WHERE` joins, `GROUP BY` with `MIN`/`MAX`/`SUM`/`COUNT`,
//!   `ORDER BY`, `UNION ALL`, and correlated `[NOT] EXISTS` — but **no
//!   window functions** (they did not exist), so interval coalescing uses
//!   classic gaps-and-islands self-joins;
//! * hash joins for equality predicates, sorted-index range joins for
//!   `BETWEEN`-shaped predicates (the `numbers` point-expansion join), and
//!   nested loops otherwise;
//! * the [`translate`] module emits, for each HTL list operator
//!   (conjunction, `until`, `eventually`, `next`), the SQL statement
//!   sequence computing the output similarity list from input lists.
//!
//! The performance-relevant property of the original — large point-expanded
//! intermediate relations and join/sort overhead that the direct algorithms
//! avoid — is preserved.
//!
//! # Example
//!
//! ```
//! use simvid_relal::Database;
//!
//! let mut db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE t (id INT, act FLOAT);
//!      INSERT INTO t VALUES (1, 2.5), (2, 0.5), (3, 2.5);",
//! )
//! .unwrap();
//! let rs = db
//!     .execute("SELECT id, act FROM t WHERE act > 1.0 ORDER BY id DESC")
//!     .unwrap()
//!     .expect("rows");
//! assert_eq!(rs.rows.len(), 2);
//! ```

mod ast;
mod catalog;
mod db;
mod error;
mod exec;
mod expr;
mod lexer;
mod parser;
mod schema;
mod table;
pub mod translate;
pub mod translate_table;
mod value;

pub use ast::{BinOp, Expr, Query, SelectBody, SelectItem, Stmt, TableRef};
pub use catalog::Catalog;
pub use db::{Database, ResultSet};
pub use error::SqlError;
pub use parser::{parse_script, parse_stmt};
pub use schema::{ColType, Column, Schema};
pub use table::Table;
pub use value::Value;
