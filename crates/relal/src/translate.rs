//! HTL list operators as SQL statement sequences — the paper's baseline.
//!
//! "The second system, i.e. the SQL based system, first generates a
//! sequence of SQL queries which take as inputs the tables for g1 and g2
//! and output the table corresponding to g" (§4). The statement sequences
//! below follow the style a mid-90s relational system imposes:
//!
//! * similarity lists are interval tables `(beg, end, act)`;
//! * interval algebra happens by **point expansion** through an indexed
//!   `numbers` table, grouping per point, then re-coalescing runs with
//!   gaps-and-islands self-joins (no window functions in 1996);
//! * the intermediate point relations are large — exactly the inefficiency
//!   the paper observed ("the intermediate relations may become quite
//!   large").
//!
//! Each operator provides a script generator (the SQL text, inspectable)
//! and a runner that loads inputs, executes the script, and reads the
//! output list back.

use crate::{ColType, Database, Schema, SqlError, Value};
use simvid_core::SimilarityList;

/// Creates and indexes the `numbers` utility table holding `1..=n` (the
/// standard point-expansion helper; real systems keep one permanently).
pub fn load_numbers(db: &mut Database, n: u32) -> Result<(), SqlError> {
    db.drop_if_exists("numbers");
    db.create_table("numbers", Schema::new(vec![("n".to_owned(), ColType::Int)]))?;
    db.insert_rows("numbers", (1..=i64::from(n)).map(|i| vec![Value::Int(i)]))?;
    db.create_index("numbers", "n")
}

/// Loads a similarity list as an interval table `name(beg, end, act)`.
pub fn load_list(db: &mut Database, name: &str, list: &SimilarityList) -> Result<(), SqlError> {
    db.drop_if_exists(name);
    db.create_table(
        name,
        Schema::new(vec![
            ("beg".to_owned(), ColType::Int),
            ("end".to_owned(), ColType::Int),
            ("act".to_owned(), ColType::Float),
        ]),
    )?;
    db.insert_rows(
        name,
        list.entries().iter().map(|e| {
            vec![
                Value::Int(i64::from(e.iv.beg)),
                Value::Int(i64::from(e.iv.end)),
                Value::Float(e.act),
            ]
        }),
    )
}

/// Reads an interval table back into a similarity list with the given
/// formula maximum.
pub fn read_list(db: &Database, name: &str, max: f64) -> Result<SimilarityList, SqlError> {
    let table = db.table(name)?;
    let (bi, ei, ai) = (
        table
            .schema
            .col("beg")
            .ok_or_else(|| SqlError::Column("beg".into()))?,
        table
            .schema
            .col("end")
            .ok_or_else(|| SqlError::Column("end".into()))?,
        table
            .schema
            .col("act")
            .ok_or_else(|| SqlError::Column("act".into()))?,
    );
    let tuples = table
        .rows
        .iter()
        .map(|r| {
            let beg = r[bi]
                .as_int()
                .ok_or_else(|| SqlError::Type("beg not int".into()))?;
            let end = r[ei]
                .as_int()
                .ok_or_else(|| SqlError::Type("end not int".into()))?;
            let act = r[ai]
                .as_f64()
                .ok_or_else(|| SqlError::Type("act not numeric".into()))?;
            Ok((beg as u32, end as u32, act))
        })
        .collect::<Result<Vec<_>, SqlError>>()?;
    SimilarityList::from_tuples(tuples, max)
        .map_err(|e| SqlError::Schema(format!("bad output list: {e}")))
}

/// The statements that coalesce a point table `pts(id, act)` into the
/// interval table `out(beg, end, act)` — the gaps-and-islands idiom.
fn coalesce_script(pts: &str, out: &str) -> String {
    format!(
        "DROP TABLE IF EXISTS {out}_starts;\n\
         CREATE TABLE {out}_starts AS SELECT s.id AS id, s.act AS act FROM {pts} s \
         WHERE NOT EXISTS (SELECT * FROM {pts} p WHERE p.id = s.id - 1 AND p.act = s.act);\n\
         DROP TABLE IF EXISTS {out}_ends;\n\
         CREATE TABLE {out}_ends AS SELECT s.id AS id, s.act AS act FROM {pts} s \
         WHERE NOT EXISTS (SELECT * FROM {pts} p WHERE p.id = s.id + 1 AND p.act = s.act);\n\
         DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT st.id AS beg, MIN(en.id) AS end, st.act AS act \
         FROM {out}_starts st, {out}_ends en \
         WHERE en.act = st.act AND en.id >= st.id GROUP BY st.id, st.act;"
    )
}

/// SQL script computing `out = a ∧ b` (point expansion, per-point sum,
/// coalesce).
#[must_use]
pub fn conjunction_script(a: &str, b: &str, out: &str) -> String {
    format!(
        "DROP TABLE IF EXISTS {out}_pts;\n\
         CREATE TABLE {out}_pts AS \
         SELECT n.n AS id, a.act AS act FROM {a} a, numbers n \
         WHERE n.n >= a.beg AND n.n <= a.end \
         UNION ALL \
         SELECT n.n AS id, b.act AS act FROM {b} b, numbers n \
         WHERE n.n >= b.beg AND n.n <= b.end;\n\
         DROP TABLE IF EXISTS {out}_sums;\n\
         CREATE TABLE {out}_sums AS SELECT id AS id, SUM(act) AS act FROM {out}_pts GROUP BY id;\n{}",
        coalesce_script(&format!("{out}_sums"), out)
    )
}

/// SQL script computing `out = g until h` at the absolute threshold `cut`
/// (= θ · max(g)): threshold + coalesce the `g` runs, expand the reachable
/// `h` values per run, take per-point maxima, re-coalesce.
#[must_use]
pub fn until_script(g: &str, h: &str, out: &str, cut: f64) -> String {
    format!(
        "DROP TABLE IF EXISTS {out}_gpts;\n\
         CREATE TABLE {out}_gpts AS SELECT n.n AS id FROM {g} g, numbers n \
         WHERE g.act >= {cut} AND n.n >= g.beg AND n.n <= g.end;\n\
         DROP TABLE IF EXISTS {out}_gs;\n\
         CREATE TABLE {out}_gs AS SELECT p.id AS id FROM {out}_gpts p \
         WHERE NOT EXISTS (SELECT * FROM {out}_gpts q WHERE q.id = p.id - 1);\n\
         DROP TABLE IF EXISTS {out}_ge;\n\
         CREATE TABLE {out}_ge AS SELECT p.id AS id FROM {out}_gpts p \
         WHERE NOT EXISTS (SELECT * FROM {out}_gpts q WHERE q.id = p.id + 1);\n\
         DROP TABLE IF EXISTS {out}_gruns;\n\
         CREATE TABLE {out}_gruns AS SELECT s.id AS beg, MIN(e.id) AS end \
         FROM {out}_gs s, {out}_ge e WHERE e.id >= s.id GROUP BY s.id;\n\
         DROP TABLE IF EXISTS {out}_reach;\n\
         CREATE TABLE {out}_reach AS SELECT n.n AS id, h.act AS act \
         FROM {out}_gruns r, {h} h, numbers n \
         WHERE h.end >= r.beg AND h.beg <= r.end + 1 \
         AND n.n >= r.beg AND n.n <= LEAST(r.end, h.end);\n\
         DROP TABLE IF EXISTS {out}_allpts;\n\
         CREATE TABLE {out}_allpts AS \
         SELECT id AS id, act AS act FROM {out}_reach \
         UNION ALL \
         SELECT n.n AS id, h.act AS act FROM {h} h, numbers n \
         WHERE n.n >= h.beg AND n.n <= h.end;\n\
         DROP TABLE IF EXISTS {out}_maxpts;\n\
         CREATE TABLE {out}_maxpts AS SELECT id AS id, MAX(act) AS act FROM {out}_allpts GROUP BY id;\n{}",
        coalesce_script(&format!("{out}_maxpts"), out)
    )
}

/// SQL script computing `out = eventually h` without point expansion: a
/// suffix-max self-join over entry end points plus segment boundaries.
#[must_use]
pub fn eventually_script(h: &str, out: &str) -> String {
    format!(
        "DROP TABLE IF EXISTS {out}_sfx;\n\
         CREATE TABLE {out}_sfx AS SELECT h1.end AS end, MAX(h2.act) AS act \
         FROM {h} h1, {h} h2 WHERE h2.end >= h1.end GROUP BY h1.end;\n\
         DROP TABLE IF EXISTS {out}_beg;\n\
         CREATE TABLE {out}_beg AS \
         SELECT h1.end AS end, MAX(h2.end) + 1 AS beg FROM {h} h1, {h} h2 \
         WHERE h2.end < h1.end GROUP BY h1.end \
         UNION ALL \
         SELECT h1.end AS end, 1 AS beg FROM {h} h1 \
         WHERE NOT EXISTS (SELECT * FROM {h} h2 WHERE h2.end < h1.end);\n\
         DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT b.beg AS beg, b.end AS end, s.act AS act \
         FROM {out}_beg b, {out}_sfx s WHERE s.end = b.end;"
    )
}

/// SQL script computing `out = next l`: intervals shift down by one.
#[must_use]
pub fn next_script(l: &str, out: &str) -> String {
    format!(
        "DROP TABLE IF EXISTS {out};\n\
         CREATE TABLE {out} AS SELECT GREATEST(l.beg - 1, 1) AS beg, l.end - 1 AS end, \
         l.act AS act FROM {l} l WHERE l.end >= 2;"
    )
}

/// Runs the conjunction baseline end to end: loads the lists, executes the
/// script, reads the result back. The `numbers` table must already cover
/// the sequence length (see [`load_numbers`]).
pub fn run_conjunction(
    db: &mut Database,
    a: &SimilarityList,
    b: &SimilarityList,
) -> Result<SimilarityList, SqlError> {
    load_list(db, "a_in", a)?;
    load_list(db, "b_in", b)?;
    db.execute_script(&conjunction_script("a_in", "b_in", "conj_out"))?;
    read_list(db, "conj_out", a.max() + b.max())
}

/// Runs the `until` baseline end to end with the fractional threshold
/// `theta`.
pub fn run_until(
    db: &mut Database,
    g: &SimilarityList,
    h: &SimilarityList,
    theta: f64,
) -> Result<SimilarityList, SqlError> {
    load_list(db, "g_in", g)?;
    load_list(db, "h_in", h)?;
    // The paper keeps a small epsilon of slack for float thresholds; match
    // the direct algorithm's comparison.
    let cut = theta * g.max() - 1e-12;
    db.execute_script(&until_script("g_in", "h_in", "until_out", cut))?;
    read_list(db, "until_out", h.max())
}

/// Runs the `eventually` baseline end to end.
pub fn run_eventually(db: &mut Database, h: &SimilarityList) -> Result<SimilarityList, SqlError> {
    load_list(db, "h_in", h)?;
    db.execute_script(&eventually_script("h_in", "ev_out"))?;
    read_list(db, "ev_out", h.max())
}

/// Runs the `next` baseline end to end.
pub fn run_next(db: &mut Database, l: &SimilarityList) -> Result<SimilarityList, SqlError> {
    load_list(db, "l_in", l)?;
    db.execute_script(&next_script("l_in", "next_out"))?;
    read_list(db, "next_out", l.max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::list;

    fn sl(tuples: Vec<(u32, u32, f64)>, max: f64) -> SimilarityList {
        SimilarityList::from_tuples(tuples, max).unwrap()
    }

    fn fresh_db(n: u32) -> Database {
        let mut db = Database::new();
        load_numbers(&mut db, n).unwrap();
        db
    }

    fn assert_same(a: &SimilarityList, b: &SimilarityList, n: usize) {
        let (da, db_) = (a.to_dense(n), b.to_dense(n));
        for (i, (x, y)) in da.iter().zip(&db_).enumerate() {
            assert!(
                (x - y).abs() < 1e-9,
                "position {}: direct {} vs sql {}\ndirect: {:?}\nsql: {:?}",
                i + 1,
                x,
                y,
                a.to_tuples(),
                b.to_tuples()
            );
        }
    }

    #[test]
    fn sql_conjunction_matches_direct() {
        let a = sl(vec![(1, 4, 2.595), (6, 6, 1.26), (10, 14, 1.26)], 6.26);
        let b = sl(vec![(1, 9, 9.787)], 9.787);
        let mut db = fresh_db(20);
        let got = run_conjunction(&mut db, &a, &b).unwrap();
        assert_same(&got, &list::and(&a, &b), 20);
    }

    #[test]
    fn sql_until_matches_direct_on_figure2() {
        let g = sl(vec![(25, 100, 1.0), (200, 250, 1.0)], 1.0);
        let h = sl(
            vec![
                (10, 50, 10.0),
                (55, 60, 15.0),
                (90, 110, 12.0),
                (125, 175, 10.0),
            ],
            20.0,
        );
        let mut db = fresh_db(260);
        let got = run_until(&mut db, &g, &h, 0.5).unwrap();
        assert_same(&got, &list::until(&g, &h, 0.5), 260);
    }

    #[test]
    fn sql_until_threshold_filters() {
        let g = sl(vec![(1, 10, 0.4)], 1.0);
        let h = sl(vec![(4, 4, 5.0)], 10.0);
        let mut db = fresh_db(12);
        let got = run_until(&mut db, &g, &h, 0.5).unwrap();
        assert_same(&got, &list::until(&g, &h, 0.5), 12);
        let got = run_until(&mut db, &g, &h, 0.4).unwrap();
        assert_same(&got, &list::until(&g, &h, 0.4), 12);
    }

    #[test]
    fn sql_eventually_matches_direct() {
        let h = sl(vec![(3, 4, 2.0), (8, 8, 5.0), (12, 13, 1.0)], 5.0);
        let mut db = fresh_db(15);
        let got = run_eventually(&mut db, &h).unwrap();
        assert_same(&got, &list::eventually(&h), 15);
        // Table 3 of the paper: eventually Moving-Train.
        let mt = sl(vec![(9, 9, 9.787)], 9.787);
        let got = run_eventually(&mut db, &mt).unwrap();
        assert_same(&got, &list::eventually(&mt), 15);
        assert_eq!(got.coalesce().to_tuples(), vec![(1, 9, 9.787)]);
    }

    #[test]
    fn sql_next_matches_direct() {
        let l = sl(vec![(1, 1, 1.0), (3, 5, 2.0)], 2.0);
        let mut db = fresh_db(8);
        let got = run_next(&mut db, &l).unwrap();
        assert_same(&got, &list::next(&l), 8);
    }

    #[test]
    fn empty_inputs() {
        let mut db = fresh_db(10);
        let e = SimilarityList::empty(2.0);
        let l = sl(vec![(2, 3, 1.0)], 2.0);
        let got = run_conjunction(&mut db, &e, &l).unwrap();
        assert_same(&got, &list::and(&e, &l), 10);
        let got = run_until(&mut db, &e, &l, 0.5).unwrap();
        assert_same(&got, &list::until(&e, &l, 0.5), 10);
        let got = run_eventually(&mut db, &e).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn scripts_are_inspectable_sql() {
        let s = conjunction_script("a", "b", "o");
        assert!(s.contains("UNION ALL"));
        assert!(s.contains("GROUP BY"));
        let s = until_script("g", "h", "o", 0.5);
        assert!(s.contains("LEAST"));
        assert!(s.to_lowercase().contains("not exists"));
    }
}
