//! In-memory row-store tables.

use crate::{Schema, SqlError, Value};

/// A heap of rows plus an optional sorted index on one column (the
/// mid-90s-DBMS feature the point-expansion joins rely on).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Vec<Value>>,
    /// `(column, permutation of row indices sorted by that column)`.
    index: Option<(usize, Vec<u32>)>,
}

impl Table {
    /// An empty table with the given schema.
    #[must_use]
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            index: None,
        }
    }

    /// Appends a row after schema validation. Invalidates the index.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), SqlError> {
        let row = self.schema.check_row(row)?;
        self.rows.push(row);
        self.index = None;
        Ok(())
    }

    /// Appends many rows (bulk load). Invalidates the index.
    pub fn insert_many(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), SqlError> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Builds (or rebuilds) the sorted index on a column.
    ///
    /// # Errors
    ///
    /// [`SqlError::Column`] on an unknown column.
    pub fn create_index(&mut self, col: &str) -> Result<(), SqlError> {
        let ci = self
            .schema
            .col(col)
            .ok_or_else(|| SqlError::Column(format!("no column `{col}` to index")))?;
        let mut perm: Vec<u32> = (0..self.rows.len() as u32).collect();
        perm.sort_by(|&a, &b| {
            self.rows[a as usize][ci]
                .sql_cmp(&self.rows[b as usize][ci])
                .expect("indexable column values are comparable")
        });
        self.index = Some((ci, perm));
        Ok(())
    }

    /// The indexed column, if an index exists.
    #[must_use]
    pub fn indexed_col(&self) -> Option<usize> {
        self.index.as_ref().map(|(c, _)| *c)
    }

    /// Row indices whose indexed column lies within `[lo, hi]`, via binary
    /// search on the sorted index. Returns `None` when no usable index
    /// exists on `col`.
    #[must_use]
    pub fn index_range(&self, col: usize, lo: &Value, hi: &Value) -> Option<Vec<u32>> {
        let (ci, perm) = self.index.as_ref()?;
        if *ci != col {
            return None;
        }
        use std::cmp::Ordering;
        let first = perm
            .partition_point(|&r| self.rows[r as usize][col].sql_cmp(lo) == Some(Ordering::Less));
        let last = perm.partition_point(|&r| {
            self.rows[r as usize][col].sql_cmp(hi) != Some(Ordering::Greater)
        });
        Some(perm[first..last].to_vec())
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColType;

    fn numbers(n: i64) -> Table {
        let mut t = Table::new(Schema::new(vec![("n".into(), ColType::Int)]));
        for i in 1..=n {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t
    }

    #[test]
    fn insert_validates() {
        let mut t = numbers(3);
        assert!(t.insert(vec![Value::Str("x".into())]).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn index_range_scans() {
        let mut t = numbers(100);
        t.create_index("n").unwrap();
        let hits = t.index_range(0, &Value::Int(10), &Value::Int(13)).unwrap();
        let vals: Vec<i64> = hits
            .iter()
            .map(|&r| t.rows[r as usize][0].as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![10, 11, 12, 13]);
        // Empty range.
        assert!(t
            .index_range(0, &Value::Int(200), &Value::Int(300))
            .unwrap()
            .is_empty());
        // Inverted bounds.
        assert!(t
            .index_range(0, &Value::Int(5), &Value::Int(4))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_survives_unsorted_input() {
        let mut t = Table::new(Schema::new(vec![("n".into(), ColType::Int)]));
        for i in [5i64, 1, 9, 3] {
            t.insert(vec![Value::Int(i)]).unwrap();
        }
        t.create_index("n").unwrap();
        let hits = t.index_range(0, &Value::Int(2), &Value::Int(6)).unwrap();
        let mut vals: Vec<i64> = hits
            .iter()
            .map(|&r| t.rows[r as usize][0].as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![3, 5]);
    }

    #[test]
    fn insert_invalidates_index() {
        let mut t = numbers(5);
        t.create_index("n").unwrap();
        t.insert(vec![Value::Int(0)]).unwrap();
        assert!(t.index_range(0, &Value::Int(0), &Value::Int(0)).is_none());
    }

    #[test]
    fn indexing_missing_column_errors() {
        let mut t = numbers(1);
        assert!(t.create_index("missing").is_err());
    }
}
