//! The query executor: incremental joins (hash / index-range / nested
//! loop), EXISTS probes, grouping, projection and ordering.

use crate::ast::{Expr, Query, SelectBody, TableRef};
use crate::expr::{col_refs, eval, infer_type, truthy, EvalCtx, RowScope, ScopeCol};
use crate::value::Key;
use crate::{BinOp, Catalog, ColType, SqlError, Value};
use std::collections::HashMap;

/// The rows and column metadata a query produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub cols: Vec<String>,
    /// Output column types.
    pub types: Vec<ColType>,
    /// The rows.
    pub rows: Vec<Vec<Value>>,
}

/// Runs a query with no outer (correlation) context.
pub(crate) fn run_query(cat: &Catalog, q: &Query) -> Result<ResultSet, SqlError> {
    run_query_outer(cat, q, None)
}

/// Runs a query, optionally correlated to an outer row context.
pub(crate) fn run_query_outer(
    cat: &Catalog,
    q: &Query,
    outer: Option<&EvalCtx<'_>>,
) -> Result<ResultSet, SqlError> {
    let mut trace = Vec::new();
    run_query_traced(cat, q, outer, &mut trace)
}

/// Runs a query, recording one line per physical join decision.
pub(crate) fn run_query_traced(
    cat: &Catalog,
    q: &Query,
    outer: Option<&EvalCtx<'_>>,
    trace: &mut Vec<String>,
) -> Result<ResultSet, SqlError> {
    let mut result: Option<ResultSet> = None;
    for body in &q.bodies {
        let rs = run_body(cat, body, outer, trace)?;
        match &mut result {
            None => result = Some(rs),
            Some(acc) => {
                if acc.cols.len() != rs.cols.len() {
                    return Err(SqlError::Schema(
                        "UNION ALL arms have different column counts".into(),
                    ));
                }
                for (t, t2) in acc.types.iter_mut().zip(&rs.types) {
                    if *t != *t2 {
                        if *t == ColType::Text || *t2 == ColType::Text {
                            return Err(SqlError::Schema(
                                "UNION ALL arms mix text and numbers".into(),
                            ));
                        }
                        *t = ColType::Float;
                    }
                }
                acc.rows.extend(rs.rows);
            }
        }
    }
    let mut rs = result.ok_or_else(|| SqlError::Unsupported("query with no bodies".into()))?;
    if !q.order_by.is_empty() {
        let scope = RowScope {
            cols: rs
                .cols
                .iter()
                .zip(&rs.types)
                .map(|(n, t)| ScopeCol {
                    alias: String::new(),
                    name: n.clone(),
                    ty: *t,
                })
                .collect(),
        };
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rs.rows.len());
        for row in rs.rows.drain(..) {
            let mut keys = Vec::with_capacity(q.order_by.len());
            for (e, _) in &q.order_by {
                // An integer literal names a 1-based output column.
                let v = if let Expr::Int(i) = e {
                    let idx = usize::try_from(*i)
                        .ok()
                        .and_then(|i| i.checked_sub(1))
                        .filter(|&i| i < row.len())
                        .ok_or_else(|| {
                            SqlError::Column(format!("ORDER BY position {i} out of range"))
                        })?;
                    row[idx].clone()
                } else {
                    // ORDER BY runs over the result columns, which carry no
                    // table qualifiers: resolve by bare name.
                    let e = strip_qualifiers(e);
                    let ctx = EvalCtx {
                        cat,
                        scope: &scope,
                        row: &row,
                        outer: None,
                        group: None,
                    };
                    eval(&e, &ctx)?
                };
                keys.push(v);
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, asc)) in q.order_by.iter().enumerate() {
                let ord = ka[i].sql_cmp(&kb[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rs.rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    Ok(rs)
}

fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Col { name, .. } => Expr::Col {
            qualifier: None,
            name: name.clone(),
        },
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(strip_qualifiers(lhs)),
            rhs: Box::new(strip_qualifiers(rhs)),
        },
        Expr::Not(x) => Expr::Not(Box::new(strip_qualifiers(x))),
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
        },
        other => other.clone(),
    }
}

fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Bin {
        op: BinOp::And,
        lhs,
        rhs,
    } = e
    {
        flatten_and(lhs, out);
        flatten_and(rhs, out);
    } else {
        out.push(e.clone());
    }
}

fn contains_exists(e: &Expr) -> bool {
    match e {
        Expr::Exists { .. } => true,
        Expr::Bin { lhs, rhs, .. } => contains_exists(lhs) || contains_exists(rhs),
        Expr::Not(x) => contains_exists(x),
        Expr::Func { args, .. } => args.iter().any(contains_exists),
        _ => false,
    }
}

/// Where an expression's column references live, relative to the table
/// being joined in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// Only the new table.
    NewOnly,
    /// Only prior tables (or the outer context, or no references at all).
    Prior,
    /// Both, or unresolvable.
    Mixed,
}

fn outer_resolves(outer: Option<&EvalCtx<'_>>, q: Option<&str>, name: &str) -> bool {
    let mut cur = outer;
    while let Some(ctx) = cur {
        if ctx.scope.try_resolve(q, name).is_some() {
            return true;
        }
        cur = ctx.outer;
    }
    false
}

fn side_of(
    e: &Expr,
    new_scope: &RowScope,
    prior_scope: &RowScope,
    outer: Option<&EvalCtx<'_>>,
) -> Side {
    let mut refs = Vec::new();
    col_refs(e, &mut refs);
    let mut new = false;
    let mut prior = false;
    for (q, name) in refs {
        if prior_scope.try_resolve(q, name).is_some() {
            prior = true;
        } else if new_scope.try_resolve(q, name).is_some() {
            new = true;
        } else if outer_resolves(outer, q, name) {
            prior = true;
        } else {
            return Side::Mixed;
        }
    }
    match (new, prior) {
        (true, false) => Side::NewOnly,
        (false, _) => Side::Prior,
        (true, true) => Side::Mixed,
    }
}

/// Is this expression a bare column of the new table? Returns the column
/// index within the table schema.
fn bare_new_col(e: &Expr, new_scope: &RowScope) -> Option<usize> {
    if let Expr::Col { qualifier, name } = e {
        new_scope.try_resolve(qualifier.as_deref(), name)
    } else {
        None
    }
}

struct EquiCond {
    new_expr: Expr,
    prior_expr: Expr,
}

struct BoundCond {
    col: usize,
    lower: bool,
    prior_expr: Expr,
}

fn run_body(
    cat: &Catalog,
    body: &SelectBody,
    outer: Option<&EvalCtx<'_>>,
    trace: &mut Vec<String>,
) -> Result<ResultSet, SqlError> {
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = &body.where_ {
        flatten_and(w, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    let mut scope = RowScope::default();
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];

    for tref in &body.from {
        (scope, rows) = join_table(cat, scope, rows, tref, &conjuncts, &mut used, outer, trace)?;
    }

    // Leftover conjuncts: EXISTS (probed or generic) and anything else.
    for (ci, c) in conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        rows = apply_conjunct(cat, &scope, rows, c, outer)?;
    }

    project(cat, body, &scope, rows, outer)
}

#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn join_table(
    cat: &Catalog,
    prior_scope: RowScope,
    prior_rows: Vec<Vec<Value>>,
    tref: &TableRef,
    conjuncts: &[Expr],
    used: &mut [bool],
    outer: Option<&EvalCtx<'_>>,
    trace: &mut Vec<String>,
) -> Result<(RowScope, Vec<Vec<Value>>), SqlError> {
    let table = cat.get(&tref.table)?;
    let binding = tref.binding();
    if prior_scope.cols.iter().any(|c| c.alias == binding) {
        return Err(SqlError::Schema(format!(
            "duplicate table binding `{binding}`"
        )));
    }
    let new_scope_solo = RowScope {
        cols: table
            .schema
            .cols
            .iter()
            .map(|c| ScopeCol {
                alias: binding.to_owned(),
                name: c.name.clone(),
                ty: c.ty,
            })
            .collect(),
    };
    let mut combined = prior_scope.clone();
    combined.cols.extend(new_scope_solo.cols.iter().cloned());

    // Classify ready conjuncts.
    let mut equi: Vec<EquiCond> = Vec::new();
    let mut bounds: Vec<BoundCond> = Vec::new();
    let mut filters: Vec<usize> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        if used[ci] || contains_exists(c) {
            continue;
        }
        // Ready: every reference resolves in the combined scope or outer.
        let mut refs = Vec::new();
        col_refs(c, &mut refs);
        let ready = refs
            .iter()
            .all(|(q, n)| combined.try_resolve(*q, n).is_some() || outer_resolves(outer, *q, n));
        if !ready {
            continue;
        }
        used[ci] = true;
        filters.push(ci);
        // Join-condition patterns (also kept as filters for safety; the
        // re-check is cheap and keeps strategies simple).
        if let Expr::Bin { op, lhs, rhs } = c {
            let l_side = side_of(lhs, &new_scope_solo, &prior_scope, outer);
            let r_side = side_of(rhs, &new_scope_solo, &prior_scope, outer);
            match op {
                BinOp::Eq => {
                    if l_side == Side::NewOnly && r_side == Side::Prior {
                        equi.push(EquiCond {
                            new_expr: (**lhs).clone(),
                            prior_expr: (**rhs).clone(),
                        });
                    } else if r_side == Side::NewOnly && l_side == Side::Prior {
                        equi.push(EquiCond {
                            new_expr: (**rhs).clone(),
                            prior_expr: (**lhs).clone(),
                        });
                    }
                }
                BinOp::Ge | BinOp::Gt | BinOp::Le | BinOp::Lt => {
                    // Orient to `new_col OP prior_expr`.
                    let oriented = if l_side == Side::NewOnly && r_side == Side::Prior {
                        bare_new_col(lhs, &new_scope_solo).map(|col| (col, *op, (**rhs).clone()))
                    } else if r_side == Side::NewOnly && l_side == Side::Prior {
                        let flipped = match op {
                            BinOp::Ge => BinOp::Le,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Lt => BinOp::Gt,
                            _ => unreachable!(),
                        };
                        bare_new_col(rhs, &new_scope_solo)
                            .map(|col| (col, flipped, (**lhs).clone()))
                    } else {
                        None
                    };
                    if let Some((col, op, prior_expr)) = oriented {
                        bounds.push(BoundCond {
                            col,
                            lower: matches!(op, BinOp::Ge | BinOp::Gt),
                            prior_expr,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // Strategy selection.
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    if !equi.is_empty() {
        trace.push(format!(
            "{} AS {binding}: hash join on {} key(s)",
            tref.table,
            equi.len()
        ));
        // Hash join: build on the new table.
        let mut built: HashMap<Key, Vec<u32>> = HashMap::new();
        for (ri, row) in table.rows.iter().enumerate() {
            let ctx = EvalCtx {
                cat,
                scope: &new_scope_solo,
                row,
                outer: None,
                group: None,
            };
            let key = Key(equi
                .iter()
                .map(|c| eval(&c.new_expr, &ctx))
                .collect::<Result<Vec<_>, _>>()?);
            built.entry(key).or_default().push(ri as u32);
        }
        for prow in &prior_rows {
            let ctx = EvalCtx {
                cat,
                scope: &prior_scope,
                row: prow,
                outer,
                group: None,
            };
            let key = Key(equi
                .iter()
                .map(|c| eval(&c.prior_expr, &ctx))
                .collect::<Result<Vec<_>, _>>()?);
            if let Some(matches) = built.get(&key) {
                for &ri in matches {
                    let mut row = prow.clone();
                    row.extend(table.rows[ri as usize].iter().cloned());
                    out_rows.push(row);
                }
            }
        }
    } else if let Some(col) = table.indexed_col().filter(|&c| {
        bounds.iter().any(|b| b.col == c && b.lower)
            && bounds.iter().any(|b| b.col == c && !b.lower)
    }) {
        trace.push(format!(
            "{} AS {binding}: index range join on `{}`",
            tref.table, table.schema.cols[col].name
        ));
        // Index range join on the indexed column.
        let lo_expr = &bounds
            .iter()
            .find(|b| b.col == col && b.lower)
            .expect("lower")
            .prior_expr;
        let hi_expr = &bounds
            .iter()
            .find(|b| b.col == col && !b.lower)
            .expect("upper")
            .prior_expr;
        for prow in &prior_rows {
            let ctx = EvalCtx {
                cat,
                scope: &prior_scope,
                row: prow,
                outer,
                group: None,
            };
            let lo = eval(lo_expr, &ctx)?;
            let hi = eval(hi_expr, &ctx)?;
            let hits = table
                .index_range(col, &lo, &hi)
                .expect("index exists on this column");
            for ri in hits {
                let mut row = prow.clone();
                row.extend(table.rows[ri as usize].iter().cloned());
                out_rows.push(row);
            }
        }
    } else {
        if prior_scope.cols.is_empty() {
            trace.push(format!("{} AS {binding}: scan", tref.table));
        } else {
            trace.push(format!("{} AS {binding}: nested loop", tref.table));
        }
        // Nested loop.
        for prow in &prior_rows {
            for trow in &table.rows {
                let mut row = prow.clone();
                row.extend(trow.iter().cloned());
                out_rows.push(row);
            }
        }
    }

    // Apply every ready conjunct as a filter (idempotent for the join
    // conditions already enforced by the strategy).
    let mut filtered = Vec::with_capacity(out_rows.len());
    'rows: for row in out_rows {
        for &ci in &filters {
            let ctx = EvalCtx {
                cat,
                scope: &combined,
                row: &row,
                outer,
                group: None,
            };
            if !truthy(&eval(&conjuncts[ci], &ctx)?) {
                continue 'rows;
            }
        }
        filtered.push(row);
    }
    Ok((combined, filtered))
}

/// A prepared EXISTS probe: a hash set over the subquery keyed by the
/// correlation expressions.
struct ExistsProbe {
    set: std::collections::HashSet<Key>,
    outer_exprs: Vec<Expr>,
}

fn prepare_exists(
    cat: &Catalog,
    q: &Query,
    outer_scope: &RowScope,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Option<ExistsProbe>, SqlError> {
    let [body] = q.bodies.as_slice() else {
        return Ok(None);
    };
    let [tref] = body.from.as_slice() else {
        return Ok(None);
    };
    if !body.group_by.is_empty() {
        return Ok(None);
    }
    let table = cat.get(&tref.table)?;
    let binding = tref.binding();
    let inner_scope = RowScope {
        cols: table
            .schema
            .cols
            .iter()
            .map(|c| ScopeCol {
                alias: binding.to_owned(),
                name: c.name.clone(),
                ty: c.ty,
            })
            .collect(),
    };
    let mut conjuncts = Vec::new();
    if let Some(w) = &body.where_ {
        flatten_and(w, &mut conjuncts);
    }
    let mut inner_filters: Vec<Expr> = Vec::new();
    let mut pairs: Vec<(Expr, Expr)> = Vec::new(); // (inner, outer)
    for c in &conjuncts {
        if contains_exists(c) {
            return Ok(None);
        }
        match side_of(c, &inner_scope, outer_scope, outer) {
            Side::NewOnly => inner_filters.push(c.clone()),
            _ => {
                let Expr::Bin {
                    op: BinOp::Eq,
                    lhs,
                    rhs,
                } = c
                else {
                    return Ok(None);
                };
                let l = side_of(lhs, &inner_scope, outer_scope, outer);
                let r = side_of(rhs, &inner_scope, outer_scope, outer);
                if l == Side::NewOnly && r == Side::Prior {
                    pairs.push(((**lhs).clone(), (**rhs).clone()));
                } else if r == Side::NewOnly && l == Side::Prior {
                    pairs.push(((**rhs).clone(), (**lhs).clone()));
                } else {
                    return Ok(None);
                }
            }
        }
    }
    if pairs.is_empty() {
        return Ok(None); // uncorrelated; generic path handles it fine
    }
    let mut set = std::collections::HashSet::new();
    'rows: for row in &table.rows {
        let ctx = EvalCtx {
            cat,
            scope: &inner_scope,
            row,
            outer: None,
            group: None,
        };
        for f in &inner_filters {
            if !truthy(&eval(f, &ctx)?) {
                continue 'rows;
            }
        }
        let key = Key(pairs
            .iter()
            .map(|(inner, _)| eval(inner, &ctx))
            .collect::<Result<Vec<_>, _>>()?);
        set.insert(key);
    }
    Ok(Some(ExistsProbe {
        set,
        outer_exprs: pairs.into_iter().map(|(_, o)| o).collect(),
    }))
}

fn apply_conjunct(
    cat: &Catalog,
    scope: &RowScope,
    rows: Vec<Vec<Value>>,
    c: &Expr,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Vec<Vec<Value>>, SqlError> {
    if let Expr::Exists { query, negated } = c {
        if let Some(probe) = prepare_exists(cat, query, scope, outer)? {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let ctx = EvalCtx {
                    cat,
                    scope,
                    row: &row,
                    outer,
                    group: None,
                };
                let key = Key(probe
                    .outer_exprs
                    .iter()
                    .map(|e| eval(e, &ctx))
                    .collect::<Result<Vec<_>, _>>()?);
                if probe.set.contains(&key) != *negated {
                    out.push(row);
                }
            }
            return Ok(out);
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let ctx = EvalCtx {
            cat,
            scope,
            row: &row,
            outer,
            group: None,
        };
        if truthy(&eval(c, &ctx)?) {
            out.push(row);
        }
    }
    Ok(out)
}

fn project(
    cat: &Catalog,
    body: &SelectBody,
    scope: &RowScope,
    rows: Vec<Vec<Value>>,
    outer: Option<&EvalCtx<'_>>,
) -> Result<ResultSet, SqlError> {
    // Expand `*`.
    let mut items: Vec<(Expr, Option<String>)> = Vec::new();
    for item in &body.items {
        if matches!(item.expr, Expr::Star) {
            for c in &scope.cols {
                items.push((
                    Expr::Col {
                        qualifier: Some(c.alias.clone()),
                        name: c.name.clone(),
                    },
                    Some(c.name.clone()),
                ));
            }
        } else {
            items.push((item.expr.clone(), item.alias.clone()));
        }
    }
    let cols: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, (e, alias))| {
            alias.clone().unwrap_or_else(|| match e {
                Expr::Col { name, .. } => name.clone(),
                _ => format!("col{}", i + 1),
            })
        })
        .collect();
    let types: Vec<ColType> = items
        .iter()
        .map(|(e, _)| infer_type(e, scope))
        .collect::<Result<Vec<_>, _>>()?;

    let has_agg = items.iter().any(|(e, _)| e.has_agg());
    let mut out = Vec::new();
    if !body.group_by.is_empty() || has_agg {
        // Group rows.
        let mut order: Vec<Key> = Vec::new();
        let mut groups: HashMap<Key, Vec<Vec<Value>>> = HashMap::new();
        if body.group_by.is_empty() {
            let key = Key(vec![]);
            order.push(key.clone());
            groups.insert(key, rows);
        } else {
            for row in rows {
                let ctx = EvalCtx {
                    cat,
                    scope,
                    row: &row,
                    outer,
                    group: None,
                };
                let key = Key(body
                    .group_by
                    .iter()
                    .map(|e| eval(e, &ctx))
                    .collect::<Result<Vec<_>, _>>()?);
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(row);
            }
        }
        let empty_row: Vec<Value> = Vec::new();
        for key in order {
            let group = &groups[&key];
            let first = group.first().unwrap_or(&empty_row);
            let ctx = EvalCtx {
                cat,
                scope,
                row: first,
                outer,
                group: Some(group),
            };
            let row = items
                .iter()
                .map(|(e, _)| eval(e, &ctx))
                .collect::<Result<Vec<_>, _>>()?;
            out.push(row);
        }
    } else {
        for row in rows {
            let ctx = EvalCtx {
                cat,
                scope,
                row: &row,
                outer,
                group: None,
            };
            let projected = items
                .iter()
                .map(|(e, _)| eval(e, &ctx))
                .collect::<Result<Vec<_>, _>>()?;
            out.push(projected);
        }
    }
    // Coerce ints living in float columns so that CREATE TABLE AS stays
    // consistent with the inferred schema.
    for row in &mut out {
        for (v, t) in row.iter_mut().zip(&types) {
            if *t == ColType::Float {
                if let Value::Int(i) = *v {
                    *v = Value::Float(i as f64);
                }
            }
        }
    }
    Ok(ResultSet {
        cols,
        types,
        rows: out,
    })
}
