//! The Casablanca fixture (§4.1).
//!
//! The paper's real data — the video itself and the manually entered
//! meta-data — is not available. What *is* printed are the similarity
//! tables the picture system produced for the two atomic predicates
//! (`Moving-Train`, Table 1; `Man-Woman`, Table 2), and all the evaluated
//! results (Tables 3–4) are functions of those tables. This module crafts
//! a 50-shot synthetic video plus scoring weights under which our picture
//! system reproduces Tables 1 and 2 exactly, so the whole pipeline
//! (meta-data → indices → atomic lists → temporal combination → ranking)
//! can be exercised end to end against the paper's numbers.

use simvid_htl::{parse, Formula};
use simvid_model::{VideoBuilder, VideoTree};
use simvid_picture::ScoringConfig;

/// Number of shots after cut detection ("we had 50 shots").
pub const SHOT_COUNT: usize = 50;

/// Table 1: the `Moving-Train` similarity list, `(beg, end, act)`.
pub const TABLE1_MOVING_TRAIN: &[(u32, u32, f64)] = &[(9, 9, 9.787)];

/// Maximum similarity of the `Moving-Train` predicate.
pub const MOVING_TRAIN_MAX: f64 = 9.787;

/// Table 2: the `Man-Woman` similarity list. "The entries in this table
/// having lower similarity values correspond to pictures/shots containing
/// two men instead of a man and a woman."
pub const TABLE2_MAN_WOMAN: &[(u32, u32, f64)] = &[
    (1, 4, 2.595),
    (6, 6, 1.26),
    (8, 8, 1.26),
    (10, 44, 1.26),
    (47, 49, 6.26),
];

/// Maximum similarity of the `Man-Woman` predicate.
pub const MAN_WOMAN_MAX: f64 = 6.26;

/// Table 3: `eventually Moving-Train`.
pub const TABLE3_EVENTUALLY: &[(u32, u32, f64)] = &[(1, 9, 9.787)];

/// Table 4: the final result of Query 1 in ranked order
/// (`start, end, similarity`).
pub const TABLE4_QUERY1_RANKED: &[(u32, u32, f64)] = &[
    (1, 4, 12.382),
    (6, 6, 11.047),
    (8, 8, 11.047),
    (5, 5, 9.787),
    (7, 7, 9.787),
    (9, 9, 9.787),
    (47, 49, 6.26),
    (10, 44, 1.26),
];

/// The final Query 1 list in temporal order (before ranking).
pub const QUERY1_LIST: &[(u32, u32, f64)] = &[
    (1, 4, 12.382),
    (5, 5, 9.787),
    (6, 6, 11.047),
    (7, 7, 9.787),
    (8, 8, 11.047),
    (9, 9, 9.787),
    (10, 44, 1.26),
    (47, 49, 6.26),
];

/// Scoring weights under which the crafted meta-data reproduces Tables 1–2.
///
/// * `Man-Woman` = 2·person + male + female + near
///   = 1.0 + 0.26 + 1.335 + 3.665 = 6.26 (the class predicate `person(x)`
///   already requires presence, so no separate `present` conjunct — that
///   keeps object-bearing but person-free shots, like the train shot, out
///   of the table as in the paper);
/// * two men score 2·person + male = 1.26;
/// * man + woman apart score 1.26 + female = 2.595;
/// * `Moving-Train` = train + moving = 5.0 + 4.787 = 9.787.
#[must_use]
pub fn weights() -> ScoringConfig {
    ScoringConfig::default()
        .with_weight("person", 0.5)
        .with_weight("male", 0.26)
        .with_weight("female", 1.335)
        .with_weight("near", 3.665)
        .with_weight("train", 5.0)
        .with_weight("moving", 4.787)
}

/// The `Man-Woman` atomic predicate as an HTL formula.
#[must_use]
pub fn man_woman() -> Formula {
    parse(
        "exists x . exists y . person(x) and person(y) \
         and male(x) and female(y) and near(x, y)",
    )
    .expect("fixture formula parses")
}

/// The `Moving-Train` atomic predicate as an HTL formula.
#[must_use]
pub fn moving_train() -> Formula {
    parse("exists t . train(t) and moving(t)").expect("fixture formula parses")
}

/// Query 1: `Man-Woman and eventually Moving-Train`.
#[must_use]
pub fn query1() -> Formula {
    man_woman().and(moving_train().eventually())
}

/// Builds the 50-shot video. Object cast: Rick (o1, male lead), Ilsa (o2,
/// female lead), Sam and Louis (o3, o4, the "two men"), and the train (o5).
#[must_use]
pub fn video() -> VideoTree {
    let mut b = VideoBuilder::new("The Making of Casablanca");
    b.set_level_names(["video", "shot"]);
    b.segment_attr("type", simvid_model::AttrValue::from("documentary"));

    let man_and_woman_apart = |b: &mut VideoBuilder| {
        let rick = b.object(1, "person", Some("Rick"));
        let ilsa = b.object(2, "person", Some("Ilsa"));
        b.relationship("male", [rick]);
        b.relationship("female", [ilsa]);
    };
    let two_men = |b: &mut VideoBuilder| {
        let sam = b.object(3, "person", Some("Sam"));
        let louis = b.object(4, "person", Some("Louis"));
        b.relationship("male", [sam]);
        b.relationship("male", [louis]);
    };
    let couple_near = |b: &mut VideoBuilder| {
        let rick = b.object(1, "person", Some("Rick"));
        let ilsa = b.object(2, "person", Some("Ilsa"));
        b.relationship("male", [rick]);
        b.relationship("female", [ilsa]);
        b.relationship("near", [rick, ilsa]);
    };

    for shot in 1..=SHOT_COUNT as u32 {
        b.child(format!("shot{shot}"));
        match shot {
            1..=4 => man_and_woman_apart(&mut b),
            6 | 8 => two_men(&mut b),
            9 => {
                let train = b.object(5, "train", None);
                b.relationship("moving", [train]);
            }
            10..=44 => two_men(&mut b),
            47..=49 => couple_near(&mut b),
            _ => {} // 5, 7, 45, 46, 50: nothing relevant entered
        }
        b.up();
    }
    b.finish().expect("fixture video is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_picture::PictureSystem;

    fn approx(got: &[(u32, u32, f64)], want: &[(u32, u32, f64)]) {
        assert_eq!(got.len(), want.len(), "got {got:?}, want {want:?}");
        for (g, w) in got.iter().zip(want) {
            assert_eq!((g.0, g.1), (w.0, w.1), "got {got:?}, want {want:?}");
            assert!((g.2 - w.2).abs() < 1e-9, "got {got:?}, want {want:?}");
        }
    }

    #[test]
    fn picture_system_reproduces_table1() {
        let tree = video();
        let sys = PictureSystem::new(&tree, weights());
        let l = sys.query_closed(&moving_train(), 1).unwrap().coalesce();
        approx(&l.to_tuples(), TABLE1_MOVING_TRAIN);
        assert!((l.max() - MOVING_TRAIN_MAX).abs() < 1e-9);
    }

    #[test]
    fn picture_system_reproduces_table2() {
        let tree = video();
        let sys = PictureSystem::new(&tree, weights());
        let l = sys.query_closed(&man_woman(), 1).unwrap().coalesce();
        approx(&l.to_tuples(), TABLE2_MAN_WOMAN);
        assert!((l.max() - MAN_WOMAN_MAX).abs() < 1e-9);
    }

    #[test]
    fn video_has_fifty_shots() {
        let tree = video();
        assert_eq!(tree.level_sequence(1).len(), SHOT_COUNT);
    }
}
