//! A replicated serving workload: the failover twin of [`crate::shard`].
//!
//! Same corpus, query pool, and Zipf schedule as the sharded workload —
//! the store is just replicated R ways ([`ReplicatedVideoDb`]), and every
//! shard read goes through breaker-gated failover. The request index is
//! the failover *epoch*: candidate order rotates per request exactly as
//! `simvid_resilience::failover_order` prescribes, so which replica
//! leads each read is deterministic in the schedule alone.
//!
//! Two runners drive the schedule, mirroring [`crate::shard`]:
//!
//! * [`run_schedule_replicated`] — sequential reference.
//! * [`run_schedule_replicated_concurrent`] — the executor fanned out over
//!   *(request, shard)* tasks; the worker finishing a request's last shard
//!   gathers. Answers **and** failover traces come back slot-ordered and,
//!   under per-replica-pure fault worlds, bit-identical to the sequential
//!   runner for every worker count.

use simvid_core::{AtomicProvider, EngineError, ShardStream};
use simvid_picture::{ReplicaTrace, ReplicatedVideoDb, ShardId, ShardedAnswer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::serve::{BoundedQueue, CloseOnPanic, ExecutorConfig};
use crate::shard::ShardedServeWorkload;

/// The outcome of driving one replicated request schedule.
#[derive(Debug, Clone)]
pub struct ReplicatedScheduleRun {
    /// Per-request scatter-gather answers, in schedule order.
    pub answers: Vec<ShardedAnswer>,
    /// Per-request failover traces, one per shard in shard order.
    pub traces: Vec<Vec<ReplicaTrace>>,
    /// Wall time of the whole schedule.
    pub elapsed: Duration,
}

impl ReplicatedScheduleRun {
    /// How many requests resolved with every shard contributing.
    #[must_use]
    pub fn complete(&self) -> usize {
        self.answers.iter().filter(|a| a.is_complete()).count()
    }

    /// How many requests lost at least one shard (every replica of it
    /// exhausted).
    #[must_use]
    pub fn degraded(&self) -> usize {
        self.answers.len() - self.complete()
    }

    /// Total shard reads served by a non-leading candidate.
    #[must_use]
    pub fn failovers(&self) -> usize {
        self.traces
            .iter()
            .flatten()
            .filter(|t| t.served_by.is_some() && t.served_by != t.consulted.first().copied())
            .count()
    }
}

/// Drives the request schedule through the replicated store sequentially:
/// request `r` scatters at epoch `r` over the shards in shard order (each
/// read walking its failover candidates), gathers, repeat. `before_request`
/// runs before each slot — fault harnesses re-key their per-request fault
/// epochs there.
///
/// `serve.requests` / `serve.request_seconds` are recorded as in
/// [`crate::serve::run_schedule`], next to the `replica.*` counters the
/// store itself maintains.
///
/// # Panics
///
/// Panics if a request fails with a non-degradable error (the pool is
/// fixed and closed, so this indicates an engine bug).
#[must_use]
pub fn run_schedule_replicated<P: AtomicProvider>(
    w: &ShardedServeWorkload,
    db: &ReplicatedVideoDb<P>,
    mut before_request: impl FnMut(usize),
) -> ReplicatedScheduleRun {
    let requests = db.registry().counter("serve.requests");
    let latency = db.registry().histogram("serve.request_seconds");
    let depth = w.depth();
    let start = Instant::now();
    let mut answers = Vec::with_capacity(w.schedule.len());
    let mut traces = Vec::with_capacity(w.schedule.len());
    for (r, &q) in w.schedule.iter().enumerate() {
        before_request(r);
        let t0 = Instant::now();
        let (answer, trace) = db
            .top_k_replicated(r as u64, &w.queries[q], depth, w.k)
            .expect("replicated request evaluates");
        latency.record_duration(t0.elapsed());
        requests.inc();
        answers.push(answer);
        traces.push(trace);
    }
    ReplicatedScheduleRun {
        answers,
        traces,
        elapsed: start.elapsed(),
    }
}

/// Concurrent twin of [`run_schedule_replicated`]: the executor fans each
/// request out over *(request, shard)* tasks, every shard read carries its
/// request's epoch, and the worker completing a request's last shard runs
/// the merge coordinator. `before_task` runs on the worker thread with the
/// request index immediately before the shard read — fault harnesses pin
/// their per-thread fault epoch there.
///
/// Answers are bit-identical to the sequential runner for every worker
/// count whenever the fault world is pure per `(shard, replica)` (always-
/// fail or never-fail replicas — the chaos regime): failover candidate
/// order is epoch-pure, and whichever live replica serves, replicas are
/// copies. Traces are then schedule-independent too (see
/// [`ReplicaTrace`]).
///
/// # Panics
///
/// As [`run_schedule_replicated`]; a panicking worker closes the queue so
/// the pool shuts down instead of deadlocking.
#[must_use]
pub fn run_schedule_replicated_concurrent<P: AtomicProvider>(
    w: &ShardedServeWorkload,
    db: &ReplicatedVideoDb<P>,
    exec: &ExecutorConfig,
    before_task: impl Fn(usize) + Sync,
) -> ReplicatedScheduleRun {
    let registry = db.registry();
    let workers = exec.workers.max(1);
    let shards = db.shard_count().max(1) as usize;
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let n = w.schedule.len();
    type ReadSlot = Mutex<Option<(Result<ShardStream, EngineError>, ReplicaTrace)>>;
    let reads: Vec<Vec<ReadSlot>> = (0..n)
        .map(|_| (0..shards).map(|_| Mutex::new(None)).collect())
        .collect();
    let remaining: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(shards)).collect();
    let started: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    type AnswerSlot = Mutex<Option<(ShardedAnswer, Vec<ReplicaTrace>)>>;
    let answers: Vec<AnswerSlot> = (0..n).map(|_| Mutex::new(None)).collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let (reads, remaining, started, answers) = (&reads, &remaining, &started, &answers);
            let (requests, latency) = (&requests, &latency);
            let before_task = &before_task;
            let worker_shards = registry.histogram(&format!("serve.worker.{wid}.shard_seconds"));
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                while let Some(task) = queue.pop() {
                    let (r, s) = (task / shards, task % shards);
                    started[r]
                        .lock()
                        .expect("request start lock")
                        .get_or_insert_with(Instant::now);
                    before_task(r);
                    let t0 = Instant::now();
                    let read = db.eval_shard_replicated(
                        r as u64,
                        ShardId(s as u32),
                        &w.queries[w.schedule[r]],
                        depth,
                        w.k,
                    );
                    worker_shards.record_duration(t0.elapsed());
                    *reads[r][s].lock().expect("read slot lock") = Some(read);
                    if remaining[r].fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last shard of request `r`: gather on this worker.
                        let mut per_shard = Vec::with_capacity(shards);
                        let mut trace = Vec::with_capacity(shards);
                        for (i, slot) in reads[r].iter().enumerate() {
                            let (outcome, t) = slot
                                .lock()
                                .expect("read slot lock")
                                .take()
                                .expect("every shard slot resolves before gather");
                            per_shard.push((ShardId(i as u32), outcome));
                            trace.push(t);
                        }
                        let answer = db
                            .gather(per_shard, w.k)
                            .expect("replicated request evaluates");
                        let t0 = started[r]
                            .lock()
                            .expect("request start lock")
                            .expect("request start recorded before gather");
                        latency.record_duration(t0.elapsed());
                        requests.inc();
                        *answers[r].lock().expect("answer slot lock") = Some((answer, trace));
                    }
                }
            });
        }
        for task in 0..n * shards {
            if !queue.push(task) {
                break; // a worker panicked; the scope join re-panics below
            }
        }
        queue.close();
    });
    let mut answers_out = Vec::with_capacity(n);
    let mut traces_out = Vec::with_capacity(n);
    for slot in answers {
        let (answer, trace) = slot
            .into_inner()
            .expect("answer slot lock")
            .expect("every admitted request resolves");
        answers_out.push(answer);
        traces_out.push(trace);
    }
    ReplicatedScheduleRun {
        answers: answers_out,
        traces: traces_out,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{build_sharded, run_schedule_sharded, ShardedServeConfig};
    use simvid_core::EngineConfig;
    use simvid_obs::Registry;
    use simvid_picture::{CacheConfig, ScoringConfig, ShardedVideoDb};
    use std::sync::Arc;

    fn workload() -> ShardedServeWorkload {
        build_sharded(&ShardedServeConfig {
            videos: 5,
            shots: 12,
            requests: 20,
            ..ShardedServeConfig::default()
        })
    }

    fn replicate(
        w: &ShardedServeWorkload,
        shards: u32,
        replicas: u32,
    ) -> ReplicatedVideoDb<'_, simvid_picture::PictureSystem<'_>> {
        ReplicatedVideoDb::partition(
            &w.store,
            shards,
            replicas,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn replicated_schedule_matches_the_sharded_reference() {
        let w = workload();
        let sharded = ShardedVideoDb::partition(
            &w.store,
            2,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        );
        let reference = run_schedule_sharded(&w, &sharded);
        let db = replicate(&w, 2, 2);
        let run = run_schedule_replicated(&w, &db, |_| {});
        assert_eq!(run.complete(), w.schedule.len());
        assert_eq!(run.failovers(), 0, "fault-free reads never fail over");
        for (a, b) in run.answers.iter().zip(&reference.answers) {
            assert_eq!(a.ranked(), b.ranked());
        }
    }

    #[test]
    fn concurrent_fanout_matches_sequential_answers_and_traces() {
        let w = workload();
        let db = replicate(&w, 2, 3);
        let seq = run_schedule_replicated(&w, &db, |_| {});
        for workers in [1, 2, 4] {
            let conc = run_schedule_replicated_concurrent(
                &w,
                &db,
                &ExecutorConfig {
                    workers,
                    queue_depth: 2 * workers,
                },
                |_| {},
            );
            assert_eq!(conc.answers.len(), seq.answers.len());
            for (a, b) in seq.answers.iter().zip(&conc.answers) {
                assert_eq!(a.ranked(), b.ranked(), "workers={workers}");
            }
            assert_eq!(conc.traces, seq.traces, "workers={workers}");
        }
    }

    #[test]
    fn failover_epoch_rotates_the_leading_replica() {
        let w = workload();
        let db = replicate(&w, 2, 4);
        let run = run_schedule_replicated(&w, &db, |_| {});
        let mut leaders = std::collections::BTreeSet::new();
        for trace in run.traces.iter().flatten() {
            leaders.insert(trace.consulted[0]);
        }
        assert!(
            leaders.len() > 1,
            "the rotation must spread primaries over replicas: {leaders:?}"
        );
    }
}
