//! Seeded random similarity lists (the §4.2 synthetic workload).
//!
//! "Since we do not have access to large amount of real world data, we
//! compared the performance of the two approaches on randomly generated
//! data. … the first column corresponds to the size, which is the number
//! of shots in the movie; approximately about one tenth of these shots
//! satisfy the atomic predicates P1 and P2."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvid_core::SimilarityList;

/// Parameters of the random list generator.
#[derive(Debug, Clone, Copy)]
pub struct ListGenConfig {
    /// Sequence length (the paper's "size" — number of shots).
    pub n: u32,
    /// Fraction of shots with non-zero similarity (paper: ~0.1).
    pub coverage: f64,
    /// Mean length of a satisfied run (consecutive shots sharing one
    /// interval entry).
    pub mean_run: f64,
    /// Maximum similarity of the simulated predicate.
    pub max_sim: f64,
}

impl Default for ListGenConfig {
    fn default() -> Self {
        ListGenConfig {
            n: 10_000,
            coverage: 0.1,
            mean_run: 10.0,
            max_sim: 10.0,
        }
    }
}

impl ListGenConfig {
    /// Same parameters, different size.
    #[must_use]
    pub fn with_n(mut self, n: u32) -> Self {
        self.n = n;
        self
    }
}

/// Samples a geometric-ish positive length with the given mean.
fn sample_len(rng: &mut StdRng, mean: f64) -> u32 {
    // Geometric with success probability 1/mean, shifted to be >= 1.
    let p = 1.0 / mean.max(1.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    let len = (1.0 - u).ln() / (1.0 - p).ln();
    (len.floor() as u32).saturating_add(1)
}

/// Generates a random similarity list: alternating gaps and satisfied runs
/// whose expected lengths realise the requested coverage. Deterministic in
/// the seed.
#[must_use]
pub fn generate(cfg: &ListGenConfig, seed: u64) -> SimilarityList {
    assert!(
        cfg.coverage > 0.0 && cfg.coverage < 1.0,
        "coverage in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap = cfg.mean_run * (1.0 - cfg.coverage) / cfg.coverage;
    let mut tuples: Vec<(u32, u32, f64)> = Vec::new();
    let mut pos: u32 = 1;
    loop {
        let gap = sample_len(&mut rng, mean_gap);
        pos = pos.saturating_add(gap);
        if pos > cfg.n {
            break;
        }
        let run = sample_len(&mut rng, cfg.mean_run).min(cfg.n - pos + 1);
        let act = rng.gen_range(0.05..=1.0) * cfg.max_sim;
        tuples.push((pos, pos + run - 1, act));
        pos += run + 1; // +1 keeps entries non-adjacent (distinct entries)
    }
    SimilarityList::from_tuples(tuples, cfg.max_sim).expect("generated entries are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = ListGenConfig::default().with_n(5_000);
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a, b);
        let c = generate(&cfg, 43);
        assert_ne!(a.to_tuples(), c.to_tuples());
    }

    #[test]
    fn respects_bounds_and_invariants() {
        let cfg = ListGenConfig {
            n: 2_000,
            coverage: 0.2,
            mean_run: 5.0,
            max_sim: 3.0,
        };
        let l = generate(&cfg, 7);
        l.check_invariants().unwrap();
        let last = l.entries().last().unwrap();
        assert!(last.iv.end <= cfg.n);
        assert!(l.entries().iter().all(|e| e.act > 0.0 && e.act <= 3.0));
    }

    #[test]
    fn coverage_is_approximately_requested() {
        let cfg = ListGenConfig {
            n: 100_000,
            coverage: 0.1,
            mean_run: 10.0,
            max_sim: 1.0,
        };
        let l = generate(&cfg, 1);
        let cov = l.coverage() as f64 / f64::from(cfg.n);
        assert!(
            (0.05..=0.2).contains(&cov),
            "coverage {cov} too far from requested 0.1"
        );
    }

    #[test]
    fn entry_count_scales_linearly() {
        let small = generate(&ListGenConfig::default().with_n(10_000), 5);
        let large = generate(&ListGenConfig::default().with_n(100_000), 5);
        let ratio = large.len() as f64 / small.len() as f64;
        assert!((5.0..=20.0).contains(&ratio), "ratio {ratio}");
    }
}
