//! The Gulf-war scenario of §2.1 as a tested fixture: a four-level
//! hierarchy (video → sub-plots → scenes → shots) with the narrative
//! structure the paper describes — bombing of the Iraqi positions, the
//! ground war, and the surrender — and the queries that motivate the level
//! modal operators.

use simvid_htl::{parse, Formula};
use simvid_model::{VideoBuilder, VideoTree};

/// Object ids of the recurring cast.
pub mod cast {
    /// The fighter escort.
    pub const FIGHTER: u64 = 1;
    /// The first bomber.
    pub const BOMBER_1: u64 = 2;
    /// A command-and-control centre.
    pub const COMMAND_CENTER: u64 = 3;
    /// The second bomber.
    pub const BOMBER_2: u64 = 4;
    /// An airfield.
    pub const AIRFIELD: u64 = 5;
    /// An armoured column.
    pub const TANKS: u64 = 6;
    /// The surrendering troops.
    pub const TROOPS: u64 = 7;
}

/// Builds the video: 3 sub-plots, 4 scenes, 10 shots.
///
/// ```text
/// gulf-war
/// ├── bombing
/// │   ├── command-centers: take-off → strike → return
/// │   └── airfields:       approach → drop
/// ├── ground-war
/// │   └── advance:         tanks-roll → engagement
/// └── surrender
///     └── white-flags:     ceasefire → troops-surrender → celebrations
/// ```
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn video() -> VideoTree {
    let mut b = VideoBuilder::new("gulf-war-report");
    b.set_level_names(["video", "subplot", "scene", "shot"]);
    b.segment_attr("type", "military-operation".into());

    b.child("bombing");
    {
        b.child("command-centers");
        b.child("take-off");
        let f = b.object(cast::FIGHTER, "airplane", Some("fighter-1"));
        let b1 = b.object(cast::BOMBER_1, "airplane", Some("bomber-1"));
        b.relationship("on_ground", [f]);
        b.relationship("on_ground", [b1]);
        b.up();
        b.child("strike");
        let b1 = b.object(cast::BOMBER_1, "airplane", Some("bomber-1"));
        let target = b.object(cast::COMMAND_CENTER, "building", None);
        b.relationship("in_air", [b1]);
        b.relationship("bombs", [b1, target]);
        b.relationship("destroyed", [target]);
        b.up();
        b.child("return");
        let f = b.object(cast::FIGHTER, "airplane", Some("fighter-1"));
        b.relationship("in_air", [f]);
        b.relationship("shot_down", [f]);
        b.up();
        b.up();

        b.child("airfields");
        b.child("approach");
        let b2 = b.object(cast::BOMBER_2, "airplane", Some("bomber-2"));
        b.relationship("in_air", [b2]);
        b.up();
        b.child("drop");
        let b2 = b.object(cast::BOMBER_2, "airplane", Some("bomber-2"));
        let field = b.object(cast::AIRFIELD, "airfield", None);
        b.relationship("bombs", [b2, field]);
        b.up();
        b.up();
    }
    b.up();

    b.child("ground-war");
    b.child("advance");
    b.child("tanks-roll");
    let tank = b.object(cast::TANKS, "tank", None);
    b.relationship("moving", [tank]);
    b.up();
    b.child("engagement");
    let tank = b.object(cast::TANKS, "tank", None);
    b.relationship("firing", [tank]);
    b.up();
    b.up();
    b.up();

    b.child("surrender");
    b.child("white-flags");
    b.child("ceasefire");
    b.up();
    b.child("troops-surrender");
    let troops = b.object(cast::TROOPS, "troops", None);
    b.relationship("surrenders", [troops]);
    b.up();
    b.child("celebrations");
    b.object(cast::TROOPS, "troops", None);
    b.up();
    b.up();
    b.up();

    b.finish().expect("fixture hierarchy is well formed")
}

/// Paper formula (A), asserted at the shot level of each scene: planes on
/// the ground, then immediately a run in the air until one is shot down.
#[must_use]
pub fn formula_a() -> Formula {
    parse(
        "at shot level ((exists p . type(p) = \"airplane\" and on_ground(p)) and \
         next ((exists q . type(q) = \"airplane\" and in_air(q)) until \
         (exists r . type(r) = \"airplane\" and shot_down(r))))",
    )
    .expect("fixture formula parses")
}

/// The browsing query of §2.2: the upper-level classification alone.
#[must_use]
pub fn browse_query() -> Formula {
    parse("type = \"military-operation\"").expect("fixture formula parses")
}

/// A cross-level narrative query: eventually a sub-plot whose shots show a
/// surrender.
#[must_use]
pub fn surrender_query() -> Formula {
    parse("at subplot level eventually (at shot level eventually (exists t . surrenders(t)))")
        .expect("fixture formula parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::Engine;
    use simvid_htl::satisfies_video;
    use simvid_picture::{PictureSystem, ScoringConfig};

    #[test]
    fn structure_matches_the_narrative() {
        let t = video();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.level_sequence(1).len(), 3, "sub-plots");
        assert_eq!(t.level_sequence(2).len(), 4, "scenes");
        assert_eq!(t.level_sequence(3).len(), 10, "shots");
        assert_eq!(t.level_by_name("shot"), Some(3));
    }

    #[test]
    fn formula_a_is_exact_only_in_the_command_center_scene() {
        let t = video();
        let sys = PictureSystem::new(&t, ScoringConfig::default());
        let engine = Engine::new(&sys, &t);
        let per_scene = engine.eval_closed_at_level(&formula_a(), 2).unwrap();
        // Scene 1 (command-centers) realises the full pattern.
        assert!(per_scene.sim_at(1).is_exact());
        // Scene 2 (airfields) only partially: planes in the air, none shot
        // down.
        let s2 = per_scene.sim_at(2);
        assert!(s2.act > 0.0 && !s2.is_exact());
        // Ground war and surrender scenes: no airplanes at all.
        for pos in 3..=4 {
            assert_eq!(per_scene.value_at(pos), 0.0, "scene {pos}");
        }
    }

    #[test]
    fn browsing_and_cross_level_queries_hold() {
        let t = video();
        assert!(satisfies_video(&t, &browse_query()));
        assert!(satisfies_video(&t, &surrender_query()));
        let sys = PictureSystem::new(&t, ScoringConfig::default());
        let engine = Engine::new(&sys, &t);
        assert!(engine.eval_video(&browse_query()).unwrap().is_exact());
        assert!(engine.eval_video(&surrender_query()).unwrap().is_exact());
    }

    #[test]
    fn similarity_and_exact_semantics_agree_on_the_fixture() {
        let t = video();
        let sys = PictureSystem::new(&t, ScoringConfig::default());
        let engine = Engine::new(&sys, &t);
        for f in [formula_a(), surrender_query()] {
            let sim = engine.eval_video(&f).unwrap();
            assert_eq!(sim.frac() > 1.0 - 1e-9, satisfies_video(&t, &f), "{f}");
        }
    }
}
