//! The query zoo: the paper's example formulas and the performance
//! workloads of §4.2.

use simvid_htl::{parse, Formula};

/// Formula (A), §2.4: "the sequence starts with a shot in which some
/// planes are on the ground, followed immediately by a sequence of shots
/// in which some planes are in the air until a shot in which a plane was
/// shot down", asserted at the shot level.
#[must_use]
pub fn formula_a() -> Formula {
    parse(
        "at shot level ((exists p . type(p) = \"airplane\" and on_ground(p)) and \
         next ((exists q . type(q) = \"airplane\" and in_air(q)) until \
         (exists r . type(r) = \"airplane\" and shot_down(r))))",
    )
    .expect("formula A parses")
}

/// Formula (B), §2.4: John Wayne shoots a bandit — three frames: both hold
/// guns, John fires at the bandit, the bandit is on the floor.
#[must_use]
pub fn formula_b() -> Formula {
    parse(
        "exists x . exists y . \
         (present(x) and present(y) and person(x) and person(y) and \
          name(x) = \"John Wayne\" and bandit(y) and holds_gun(x) and holds_gun(y)) \
         and eventually ((present(x) and present(y) and fires_at(x, y)) \
         and eventually (present(y) and on_floor(y)))",
    )
    .expect("formula B parses")
}

/// Formula (C), §2.4: a plane appears, and later the same plane appears at
/// a greater height (the freeze-quantifier example).
#[must_use]
pub fn formula_c() -> Formula {
    parse(
        "exists z . present(z) and type(z) = \"airplane\" and \
         [h := height(z)] eventually (present(z) and height(z) > h)",
    )
    .expect("formula C parses")
}

/// The §4.2 performance formula `P1 ∧ P2` over two abstract atomic
/// predicates.
#[must_use]
pub fn p1_and_p2() -> Formula {
    parse("P1() and P2()").expect("parses")
}

/// The §4.2 performance formula `P1 until P2`.
#[must_use]
pub fn p1_until_p2() -> Formula {
    parse("P1() until P2()").expect("parses")
}

/// One of the paper's "two other more complex formulas" (results reported
/// as consistent with the simple ones): `(P1 ∧ P2) until P3`.
#[must_use]
pub fn complex_1() -> Formula {
    parse("(P1() and P2()) until P3()").expect("parses")
}

/// The second complex formula: `P1 ∧ eventually (P2 until P3)`.
#[must_use]
pub fn complex_2() -> Formula {
    parse("P1() and eventually (P2() until P3())").expect("parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::{classify, FormulaClass};

    #[test]
    fn formula_classes_match_the_paper() {
        // (A) without its level prefix is type (1); with it, extended.
        assert_eq!(classify(&formula_a()), FormulaClass::ExtendedConjunctive);
        assert_eq!(classify(&formula_b()), FormulaClass::Type2);
        assert_eq!(classify(&formula_c()), FormulaClass::Conjunctive);
        // P1 ∧ P2 has no temporal operator at all — the smallest class.
        assert_eq!(classify(&p1_and_p2()), FormulaClass::NonTemporal);
        assert_eq!(classify(&p1_until_p2()), FormulaClass::Type1);
        assert_eq!(classify(&complex_1()), FormulaClass::Type1);
        assert_eq!(classify(&complex_2()), FormulaClass::Type1);
    }

    #[test]
    fn formulas_round_trip_through_printing() {
        for f in [
            formula_a(),
            formula_b(),
            formula_c(),
            complex_1(),
            complex_2(),
        ] {
            let reparsed = parse(&f.to_string()).unwrap();
            assert_eq!(f, reparsed);
        }
    }
}
