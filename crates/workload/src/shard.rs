//! A sharded serving workload: the multi-video corpus twin of
//! [`crate::serve`].
//!
//! The corpus is a seeded set of random videos (one tree per video, same
//! generator as the single-video serving workload), the query pool and
//! Zipf-skewed request schedule are shared with [`crate::serve`], and each
//! request is a corpus-wide top-`k` answered by scatter-gather over a
//! [`ShardedVideoDb`]. Two runners drive the schedule:
//!
//! * [`run_schedule_sharded`] — the sequential reference: scatter each
//!   request across the shards in shard order, gather, next request.
//! * [`run_schedule_sharded_concurrent`] — the PR 7 executor fanned out
//!   over `(request, shard)` tasks: a fixed worker pool drains a bounded
//!   queue of shard evaluations, and whichever worker finishes the last
//!   shard of a request runs the merge coordinator for it. Results come
//!   back slot-ordered and bit-identical to the sequential runner for
//!   every worker count and every shard count.

use simvid_core::{AtomicProvider, EngineError, ShardStream};
use simvid_htl::Formula;
use simvid_model::VideoStore;
use simvid_picture::{ShardId, ShardedAnswer, ShardedVideoDb};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::randomvideo::{generate, VideoGenConfig};
use crate::serve::{BoundedQueue, CloseOnPanic, ExecutorConfig};

/// Parameters of the sharded serving workload.
#[derive(Debug, Clone)]
pub struct ShardedServeConfig {
    /// Number of videos in the corpus.
    pub videos: u32,
    /// Shots per video (leaves of each two-level tree).
    pub shots: u32,
    /// Number of requests in the schedule.
    pub requests: usize,
    /// Skew of the query popularity distribution (see
    /// [`crate::serve::ServeConfig::zipf_exponent`]).
    pub zipf_exponent: f64,
    /// `k` of the corpus-wide top-`k` each request asks for.
    pub k: usize,
    /// Seed for the corpus and the schedule.
    pub seed: u64,
    /// Per-video atomic-cache capacity.
    pub cache_capacity: usize,
    /// Shard count of the partition.
    pub shards: u32,
    /// Worker threads of the concurrent executor.
    pub workers: usize,
    /// Capacity of the executor's bounded task queue.
    pub queue_depth: usize,
}

impl Default for ShardedServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ShardedServeConfig {
            videos: 8,
            shots: 60,
            requests: 120,
            zipf_exponent: 1.1,
            k: 10,
            seed: 97,
            cache_capacity: 1024,
            shards: 2,
            workers,
            queue_depth: 2 * workers,
        }
    }
}

/// A fully materialised sharded serving workload: the corpus, the query
/// pool, and the request schedule (indices into the pool).
pub struct ShardedServeWorkload {
    /// The served corpus; partition it with
    /// [`ShardedVideoDb::partition`].
    pub store: VideoStore,
    /// The query pool, hottest first (same pool as [`crate::serve`]).
    pub queries: Vec<Formula>,
    /// The request schedule: `schedule[r]` indexes into `queries`.
    pub schedule: Vec<usize>,
    /// Top-`k` size of every request.
    pub k: usize,
}

impl ShardedServeWorkload {
    /// The depth requests are evaluated at (the shot level of every
    /// generated video).
    #[must_use]
    pub fn depth(&self) -> u8 {
        1
    }
}

/// Builds the sharded workload. Deterministic in `cfg.seed`: video `i`
/// derives its generator seed from the base seed, and the schedule uses
/// the exact sampling of [`crate::serve::build`].
#[must_use]
pub fn build_sharded(cfg: &ShardedServeConfig) -> ShardedServeWorkload {
    let mut store = VideoStore::new();
    for i in 0..cfg.videos {
        let seed = cfg
            .seed
            .wrapping_add(u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        store.add(generate(
            &VideoGenConfig {
                branching: vec![cfg.shots],
                object_count: 10,
                objects_per_leaf: 3.0,
                ..VideoGenConfig::default()
            },
            seed,
        ));
    }
    let single = crate::serve::build(&crate::serve::ServeConfig {
        shots: 1, // the tree is discarded; only the schedule matters
        requests: cfg.requests,
        zipf_exponent: cfg.zipf_exponent,
        k: cfg.k,
        seed: cfg.seed,
        ..crate::serve::ServeConfig::default()
    });
    ShardedServeWorkload {
        store,
        queries: single.queries,
        schedule: single.schedule,
        k: cfg.k,
    }
}

/// The outcome of driving one sharded request schedule.
#[derive(Debug, Clone)]
pub struct ShardedScheduleRun {
    /// Per-request scatter-gather answers, in schedule order.
    pub answers: Vec<ShardedAnswer>,
    /// Wall time of the whole schedule.
    pub elapsed: Duration,
}

impl ShardedScheduleRun {
    /// How many requests resolved with every shard contributing.
    #[must_use]
    pub fn complete(&self) -> usize {
        self.answers.iter().filter(|a| a.is_complete()).count()
    }

    /// How many requests lost at least one shard.
    #[must_use]
    pub fn degraded(&self) -> usize {
        self.answers.len() - self.complete()
    }
}

/// Drives the request schedule through the sharded store sequentially:
/// scatter each request over the shards in shard order, gather, repeat.
/// Failed shards degrade the affected requests (see
/// [`ShardedVideoDb::gather`]); `serve.requests` and
/// `serve.request_seconds` are recorded as in [`crate::serve::run_schedule`],
/// next to the `shard.*` counters the store itself maintains.
///
/// # Panics
///
/// Panics if a request fails with a non-degradable error (the pool is
/// fixed and closed, so this indicates an engine bug).
#[must_use]
pub fn run_schedule_sharded<P: AtomicProvider>(
    w: &ShardedServeWorkload,
    db: &ShardedVideoDb<P>,
) -> ShardedScheduleRun {
    let requests = db.registry().counter("serve.requests");
    let latency = db.registry().histogram("serve.request_seconds");
    let depth = w.depth();
    let start = Instant::now();
    let answers = w
        .schedule
        .iter()
        .map(|&q| {
            let t0 = Instant::now();
            let answer = db
                .top_k(&w.queries[q], depth, w.k)
                .expect("sharded request evaluates");
            latency.record_duration(t0.elapsed());
            requests.inc();
            answer
        })
        .collect();
    ShardedScheduleRun {
        answers,
        elapsed: start.elapsed(),
    }
}

/// Concurrent twin of [`run_schedule_sharded`]: the PR 7 fixed-size worker
/// pool and bounded queue, with the unit of work one *(request, shard)*
/// pair instead of one request — the executor fans each request out across
/// the shards, and the worker that completes a request's last shard runs
/// the merge coordinator and writes the answer into the request's slot.
/// Answers come back in schedule order and bit-identical to the
/// sequential runner for every worker count: per-shard streams are merged
/// by the same deterministic coordinator whatever order they finish in.
///
/// # Panics
///
/// As [`run_schedule_sharded`]; a panicking worker closes the queue so
/// the pool shuts down instead of deadlocking.
#[must_use]
pub fn run_schedule_sharded_concurrent<P: AtomicProvider>(
    w: &ShardedServeWorkload,
    db: &ShardedVideoDb<P>,
    exec: &ExecutorConfig,
) -> ShardedScheduleRun {
    let registry = db.registry();
    let workers = exec.workers.max(1);
    let shards = db.shard_count().max(1) as usize;
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let n = w.schedule.len();
    // Per-request scatter state: one stream slot per shard, a countdown of
    // shards still in flight, the request's first-task start time, and the
    // gathered answer.
    type StreamSlot = Mutex<Option<Result<ShardStream, EngineError>>>;
    let streams: Vec<Vec<StreamSlot>> = (0..n)
        .map(|_| (0..shards).map(|_| Mutex::new(None)).collect())
        .collect();
    let remaining: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(shards)).collect();
    let started: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let answers: Vec<Mutex<Option<ShardedAnswer>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let (streams, remaining, started, answers) = (&streams, &remaining, &started, &answers);
            let (requests, latency) = (&requests, &latency);
            let worker_shards = registry.histogram(&format!("serve.worker.{wid}.shard_seconds"));
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                while let Some(task) = queue.pop() {
                    let (r, s) = (task / shards, task % shards);
                    started[r]
                        .lock()
                        .expect("request start lock")
                        .get_or_insert_with(Instant::now);
                    let t0 = Instant::now();
                    let stream =
                        db.eval_shard(ShardId(s as u32), &w.queries[w.schedule[r]], depth, w.k);
                    worker_shards.record_duration(t0.elapsed());
                    *streams[r][s].lock().expect("stream slot lock") = Some(stream);
                    if remaining[r].fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last shard of request `r`: gather on this worker.
                        let per_shard = streams[r]
                            .iter()
                            .enumerate()
                            .map(|(i, slot)| {
                                let outcome = slot
                                    .lock()
                                    .expect("stream slot lock")
                                    .take()
                                    .expect("every shard slot resolves before gather");
                                (ShardId(i as u32), outcome)
                            })
                            .collect();
                        let answer = db
                            .gather(per_shard, w.k)
                            .expect("sharded request evaluates");
                        let t0 = started[r]
                            .lock()
                            .expect("request start lock")
                            .expect("request start recorded before gather");
                        latency.record_duration(t0.elapsed());
                        requests.inc();
                        *answers[r].lock().expect("answer slot lock") = Some(answer);
                    }
                }
            });
        }
        for task in 0..n * shards {
            if !queue.push(task) {
                break; // a worker panicked; the scope join re-panics below
            }
        }
        queue.close();
    });
    let answers = answers
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("answer slot lock")
                .expect("every admitted request resolves")
        })
        .collect();
    ShardedScheduleRun {
        answers,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::EngineConfig;
    use simvid_obs::Registry;
    use simvid_picture::{CacheConfig, ScoringConfig};
    use std::sync::Arc;

    fn workload() -> ShardedServeWorkload {
        build_sharded(&ShardedServeConfig {
            videos: 5,
            shots: 12,
            requests: 24,
            ..ShardedServeConfig::default()
        })
    }

    fn partition(
        w: &ShardedServeWorkload,
        shards: u32,
    ) -> ShardedVideoDb<'_, simvid_picture::PictureSystem<'_>> {
        ShardedVideoDb::partition(
            &w.store,
            shards,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn build_is_deterministic_in_seed() {
        let a = workload();
        let b = workload();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.store.iter().count(), 5);
        for ((_, ta), (_, tb)) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(ta.segment_count(), tb.segment_count());
        }
    }

    #[test]
    fn concurrent_fanout_is_bit_identical_to_sequential() {
        let w = workload();
        for shards in [1, 2, 4] {
            let db = partition(&w, shards);
            let seq = run_schedule_sharded(&w, &db);
            for workers in [1, 2, 4] {
                let conc = run_schedule_sharded_concurrent(
                    &w,
                    &db,
                    &ExecutorConfig {
                        workers,
                        queue_depth: 2 * workers,
                    },
                );
                assert_eq!(conc.answers.len(), seq.answers.len());
                for (a, b) in seq.answers.iter().zip(&conc.answers) {
                    assert_eq!(a.ranked(), b.ranked(), "shards={shards} workers={workers}");
                }
            }
        }
    }

    #[test]
    fn sharded_schedule_matches_unsharded_oracle() {
        let w = workload();
        for shards in [1, 3] {
            let db = partition(&w, shards);
            let run = run_schedule_sharded(&w, &db);
            assert_eq!(run.complete(), w.schedule.len());
            for (answer, &q) in run.answers.iter().zip(&w.schedule) {
                let oracle = db.top_k_unsharded(&w.queries[q], w.depth(), w.k).unwrap();
                assert_eq!(answer.ranked(), &oracle[..], "shards={shards}");
            }
        }
    }
}
