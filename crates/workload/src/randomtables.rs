//! Seeded random similarity *tables* — binding rows over random lists —
//! for differential testing of the table algebra and its SQL translation.

use crate::randomlists::{generate as generate_list, ListGenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvid_core::{Row, SimilarityTable};
use simvid_model::ObjectId;

/// Parameters of the random table generator.
#[derive(Debug, Clone)]
pub struct TableGenConfig {
    /// Object-variable column names.
    pub cols: Vec<String>,
    /// Number of binding rows.
    pub rows: usize,
    /// Object-id universe per column (ids drawn from `1..=universe`).
    pub universe: u64,
    /// List shape per row.
    pub lists: ListGenConfig,
}

impl Default for TableGenConfig {
    fn default() -> Self {
        TableGenConfig {
            cols: vec!["x".into()],
            rows: 4,
            universe: 5,
            lists: ListGenConfig {
                n: 60,
                coverage: 0.3,
                mean_run: 4.0,
                max_sim: 3.0,
            },
        }
    }
}

/// Generates a random similarity table. Bindings are distinct;
/// deterministic in the seed.
#[must_use]
pub fn generate(cfg: &TableGenConfig, seed: u64) -> SimilarityTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = SimilarityTable::new(cfg.cols.clone(), Vec::new(), cfg.lists.max_sim);
    let mut used: Vec<Vec<ObjectId>> = Vec::new();
    let mut attempts = 0;
    while table.rows.len() < cfg.rows && attempts < cfg.rows * 20 {
        attempts += 1;
        let objs: Vec<ObjectId> = (0..cfg.cols.len())
            .map(|_| ObjectId(rng.gen_range(1..=cfg.universe)))
            .collect();
        if used.contains(&objs) {
            continue;
        }
        let list = generate_list(&cfg.lists, rng.gen());
        if list.is_empty() {
            continue;
        }
        used.push(objs.clone());
        table.push_row(Row {
            objs,
            ranges: Vec::new(),
            list: std::sync::Arc::new(list),
        });
    }
    table.ensure_closed_row()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_bindings() {
        let cfg = TableGenConfig {
            rows: 6,
            ..TableGenConfig::default()
        };
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        assert_eq!(a, b);
        for (i, r1) in a.rows.iter().enumerate() {
            for r2 in &a.rows[i + 1..] {
                assert_ne!(r1.objs, r2.objs, "bindings must be distinct");
            }
        }
    }

    #[test]
    fn respects_column_shape() {
        let cfg = TableGenConfig {
            cols: vec!["x".into(), "y".into()],
            rows: 3,
            ..TableGenConfig::default()
        };
        let t = generate(&cfg, 9);
        assert_eq!(t.obj_cols, vec!["x", "y"]);
        assert!(t.rows.iter().all(|r| r.objs.len() == 2));
        for r in &t.rows {
            r.list.check_invariants().unwrap();
        }
    }

    #[test]
    fn zero_rows_yields_closed_invariant_only_when_closed() {
        let cfg = TableGenConfig {
            cols: vec![],
            rows: 0,
            ..TableGenConfig::default()
        };
        let t = generate(&cfg, 1);
        assert!(t.is_closed());
        assert_eq!(t.rows.len(), 1, "closed tables keep their single row");
    }
}
