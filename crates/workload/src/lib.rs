//! Datasets and workload generators for the reproduction:
//!
//! * [`casablanca`] — a synthetic stand-in for the paper's real test video
//!   ("The Making of Casablanca", 50 shots after cut detection). The
//!   meta-data and scoring weights are crafted so that the picture
//!   retrieval system emits **exactly** the similarity tables the paper
//!   prints (Tables 1 and 2), making every downstream number (Tables 3
//!   and 4) reproducible end to end.
//! * [`randomlists`] — seeded random similarity lists matching the §4.2
//!   setup ("randomly generated data … about one tenth of these shots
//!   satisfy the atomic predicates").
//! * [`randomvideo`] — seeded random video hierarchies with meta-data, for
//!   end-to-end and differential testing.
//! * [`gulfwar`] — the §2.1 Gulf-war hierarchy (sub-plots → scenes →
//!   shots) with the narrative queries that motivate the level modal
//!   operators.
//! * [`queries`] — the paper's example formulas (A), (B), (C), Query 1 and
//!   the performance-comparison formulas.
//! * [`serve`] — a repeated-traffic serving workload (Zipf-skewed top-`k`
//!   requests over a fixed query pool), for the cross-query cache.

pub mod casablanca;
pub mod churn;
pub mod gulfwar;
pub mod queries;
pub mod randomlists;
pub mod randomtables;
pub mod randomvideo;
pub mod replica;
pub mod serve;
pub mod shard;
