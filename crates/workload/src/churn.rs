//! A churn serving workload: queries interleaved with corpus mutations.
//!
//! The corpus, query pool and Zipf-skewed schedule are exactly those of
//! [`crate::shard`] (same seeding, so the mutation-free prefix of a churn
//! run answers bit-identically to the frozen sharded workload). On top of
//! them, [`build_churn`] derives a deterministic sequence of mutation
//! batches — `Ingest`/`Update`/`Remove` mixes, always leaving at least
//! one live video — scheduled at fixed request positions. Two runners
//! drive the schedule against a [`LiveVideoDb`]:
//!
//! * [`run_schedule_churn`] — the sequential reference: before each
//!   request, apply any batch scheduled at its position; then pin a
//!   snapshot and answer.
//! * [`run_schedule_churn_concurrent`] — the segments between mutation
//!   points run through the PR 7 `(request, shard)` worker-pool fan-out
//!   against one pinned snapshot per segment; the pool drains (a
//!   barrier) at each mutation point, the batch applies, and the next
//!   segment pins the new epoch. Answers are bit-identical to the
//!   sequential runner at every worker count because each request is
//!   answered at the same epoch either way.

use simvid_core::{EngineError, ShardStream};
use simvid_htl::Formula;
use simvid_model::{CorpusOp, VideoId, VideoStore};
use simvid_picture::{LivePin, LiveVideoDb, ShardId, ShardedAnswer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::randomvideo::{generate, VideoGenConfig};
use crate::serve::{BoundedQueue, CloseOnPanic, ExecutorConfig};

/// Parameters of the churn workload.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of videos in the base corpus (epoch 0).
    pub videos: u32,
    /// Shots per video (base and mutated trees alike).
    pub shots: u32,
    /// Number of requests in the schedule.
    pub requests: usize,
    /// Skew of the query popularity distribution.
    pub zipf_exponent: f64,
    /// `k` of the corpus-wide top-`k` each request asks for.
    pub k: usize,
    /// Seed for the corpus, the schedule and the mutation batches.
    pub seed: u64,
    /// Per-video atomic-cache capacity.
    pub cache_capacity: usize,
    /// Shard count of the live partition.
    pub shards: u32,
    /// Replica count per video.
    pub replicas: u32,
    /// Number of mutation batches, spread evenly over the schedule.
    pub batches: usize,
    /// Worker threads of the concurrent executor.
    pub workers: usize,
    /// Capacity of the executor's bounded task queue.
    pub queue_depth: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ChurnConfig {
            videos: 8,
            shots: 60,
            requests: 120,
            zipf_exponent: 1.1,
            k: 10,
            seed: 97,
            cache_capacity: 1024,
            shards: 2,
            replicas: 1,
            batches: 3,
            workers,
            queue_depth: 2 * workers,
        }
    }
}

/// A fully materialised churn workload: the base corpus, the query pool
/// and schedule, and the mutation batches at their scheduled positions.
pub struct ChurnWorkload {
    /// The base corpus (epoch 0); hand it to [`LiveVideoDb::new`].
    pub store: VideoStore,
    /// The query pool, hottest first.
    pub queries: Vec<Formula>,
    /// The request schedule: `schedule[r]` indexes into `queries`.
    pub schedule: Vec<usize>,
    /// Mutation batches as `(position, ops)`: the batch applies *before*
    /// the request at `position`. Positions are non-decreasing.
    pub batches: Vec<(usize, Vec<CorpusOp>)>,
    /// Top-`k` size of every request.
    pub k: usize,
}

impl ChurnWorkload {
    /// The depth requests are evaluated at (the shot level).
    #[must_use]
    pub fn depth(&self) -> u8 {
        1
    }

    /// Requests before the first mutation — the prefix that must answer
    /// bit-identically to the frozen (epoch 0) store.
    #[must_use]
    pub fn mutation_free_prefix(&self) -> usize {
        self.batches
            .first()
            .map_or(self.schedule.len(), |(p, _)| *p)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the churn workload. Deterministic in `cfg.seed`; the base
/// corpus and schedule are exactly [`crate::shard::build_sharded`]'s for
/// the same parameters.
#[must_use]
pub fn build_churn(cfg: &ChurnConfig) -> ChurnWorkload {
    let sharded = crate::shard::build_sharded(&crate::shard::ShardedServeConfig {
        videos: cfg.videos,
        shots: cfg.shots,
        requests: cfg.requests,
        zipf_exponent: cfg.zipf_exponent,
        k: cfg.k,
        seed: cfg.seed,
        cache_capacity: cfg.cache_capacity,
        shards: cfg.shards,
        workers: cfg.workers,
        queue_depth: cfg.queue_depth,
    });

    // Derive the mutation batches from a private splitmix stream,
    // simulating store liveness so every batch is valid by construction.
    let mut rng = cfg.seed ^ 0x6368_7572_6e5f_6f70; // "churn_op"
    let mut live: Vec<VideoId> = (0..cfg.videos).map(VideoId).collect();
    let mut next_id = cfg.videos;
    let gen_tree = |seed: u64| {
        generate(
            &VideoGenConfig {
                branching: vec![cfg.shots],
                object_count: 10,
                objects_per_leaf: 3.0,
                ..VideoGenConfig::default()
            },
            seed,
        )
    };
    let mut batches: Vec<(usize, Vec<CorpusOp>)> = Vec::with_capacity(cfg.batches);
    for j in 0..cfg.batches {
        let position = (j + 1) * cfg.requests / (cfg.batches + 1);
        let op_count = 1 + (splitmix(&mut rng) % 3) as usize;
        let mut ops: Vec<CorpusOp> = Vec::with_capacity(op_count);
        for _ in 0..op_count {
            let roll = splitmix(&mut rng) % 3;
            match roll {
                1 if !live.is_empty() => {
                    let pick = live[(splitmix(&mut rng) as usize) % live.len()];
                    ops.push(CorpusOp::Update(pick, gen_tree(splitmix(&mut rng))));
                }
                2 if live.len() > 1 => {
                    let ix = (splitmix(&mut rng) as usize) % live.len();
                    let pick = live.swap_remove(ix);
                    ops.push(CorpusOp::Remove(pick));
                }
                _ => {
                    ops.push(CorpusOp::Ingest(gen_tree(splitmix(&mut rng))));
                    live.push(VideoId(next_id));
                    next_id += 1;
                }
            }
        }
        batches.push((position, ops));
    }

    ChurnWorkload {
        store: sharded.store,
        queries: sharded.queries,
        schedule: sharded.schedule,
        batches,
        k: cfg.k,
    }
}

/// The outcome of driving one churn schedule.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// Per-request `(epoch, answer)` pairs, in schedule order: the epoch
    /// the request's pinned snapshot served.
    pub answers: Vec<(u64, ShardedAnswer)>,
    /// Wall time of the whole schedule, mutation applies included.
    pub elapsed: Duration,
}

impl ChurnRun {
    /// How many requests resolved with every shard contributing.
    #[must_use]
    pub fn complete(&self) -> usize {
        self.answers.iter().filter(|(_, a)| a.is_complete()).count()
    }

    /// How many requests lost at least one shard.
    #[must_use]
    pub fn degraded(&self) -> usize {
        self.answers.len() - self.complete()
    }

    /// The epochs served, deduplicated in order.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for (e, _) in &self.answers {
            if out.last() != Some(e) {
                out.push(*e);
            }
        }
        out
    }
}

/// Drives the churn schedule sequentially: before each request, apply
/// every batch scheduled at or before its position; then pin a snapshot
/// and answer at that pinned epoch. `serve.requests` and
/// `serve.request_seconds` are recorded as in the other serving loops.
///
/// # Panics
///
/// Panics if a scheduled batch is rejected (batches are valid by
/// construction) or a request fails non-degradably.
#[must_use]
pub fn run_schedule_churn(w: &ChurnWorkload, db: &LiveVideoDb) -> ChurnRun {
    let requests = db.registry().counter("serve.requests");
    let latency = db.registry().histogram("serve.request_seconds");
    let depth = w.depth();
    let start = Instant::now();
    let mut answers: Vec<(u64, ShardedAnswer)> = Vec::with_capacity(w.schedule.len());
    let mut bi = 0;
    for (r, &q) in w.schedule.iter().enumerate() {
        while bi < w.batches.len() && w.batches[bi].0 <= r {
            db.apply(&w.batches[bi].1).expect("scheduled batch applies");
            bi += 1;
        }
        let pin = db.pin();
        let t0 = Instant::now();
        let answer = pin
            .top_k(&w.queries[q], depth, w.k)
            .expect("churn request evaluates");
        latency.record_duration(t0.elapsed());
        requests.inc();
        answers.push((pin.epoch().0, answer));
    }
    while bi < w.batches.len() {
        db.apply(&w.batches[bi].1).expect("scheduled batch applies");
        bi += 1;
    }
    ChurnRun {
        answers,
        elapsed: start.elapsed(),
    }
}

/// Concurrent twin of [`run_schedule_churn`]: each segment of requests
/// between mutation points fans out as `(request, shard)` tasks over the
/// PR 7 worker pool against **one pinned snapshot**; the pool drains at
/// every mutation point (a barrier), the batch applies, and the next
/// segment pins the new epoch. Bit-identical to the sequential runner at
/// every worker count.
///
/// # Panics
///
/// As [`run_schedule_churn`]; a panicking worker closes the queue so the
/// pool shuts down instead of deadlocking.
#[must_use]
pub fn run_schedule_churn_concurrent(
    w: &ChurnWorkload,
    db: &LiveVideoDb,
    exec: &ExecutorConfig,
) -> ChurnRun {
    let n = w.schedule.len();
    let start = Instant::now();
    let mut answers: Vec<(u64, ShardedAnswer)> = Vec::with_capacity(n);
    let mut bi = 0;
    let mut lo = 0;
    while lo < n {
        while bi < w.batches.len() && w.batches[bi].0 <= lo {
            db.apply(&w.batches[bi].1).expect("scheduled batch applies");
            bi += 1;
        }
        // All remaining batch positions are > lo, so the segment is
        // non-empty and every request in it serves the just-pinned epoch.
        let hi = if bi < w.batches.len() {
            w.batches[bi].0.min(n)
        } else {
            n
        };
        let pin = db.pin();
        let epoch = pin.epoch().0;
        let segment = run_segment_concurrent(w, db, &pin, lo, hi, exec);
        answers.extend(segment.into_iter().map(|a| (epoch, a)));
        lo = hi;
    }
    while bi < w.batches.len() {
        db.apply(&w.batches[bi].1).expect("scheduled batch applies");
        bi += 1;
    }
    ChurnRun {
        answers,
        elapsed: start.elapsed(),
    }
}

/// Fans requests `lo..hi` out as `(request, shard)` tasks against one
/// pinned snapshot — the same slot-ordered scatter state as
/// [`crate::shard::run_schedule_sharded_concurrent`], with the pin
/// supplying `eval_shard`/`gather`.
fn run_segment_concurrent(
    w: &ChurnWorkload,
    db: &LiveVideoDb,
    pin: &LivePin,
    lo: usize,
    hi: usize,
    exec: &ExecutorConfig,
) -> Vec<ShardedAnswer> {
    let registry = db.registry();
    let workers = exec.workers.max(1);
    let shards = pin.shard_count().max(1) as usize;
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let n = hi - lo;
    type StreamSlot = Mutex<Option<Result<ShardStream, EngineError>>>;
    let streams: Vec<Vec<StreamSlot>> = (0..n)
        .map(|_| (0..shards).map(|_| Mutex::new(None)).collect())
        .collect();
    let remaining: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(shards)).collect();
    let started: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let answers: Vec<Mutex<Option<ShardedAnswer>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let (streams, remaining, started, answers) = (&streams, &remaining, &started, &answers);
            let (requests, latency) = (&requests, &latency);
            let worker_shards = registry.histogram(&format!("serve.worker.{wid}.shard_seconds"));
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                while let Some(task) = queue.pop() {
                    let (i, s) = (task / shards, task % shards);
                    started[i]
                        .lock()
                        .expect("request start lock")
                        .get_or_insert_with(Instant::now);
                    let t0 = Instant::now();
                    let stream = pin.eval_shard(
                        ShardId(s as u32),
                        &w.queries[w.schedule[lo + i]],
                        depth,
                        w.k,
                    );
                    worker_shards.record_duration(t0.elapsed());
                    *streams[i][s].lock().expect("stream slot lock") = Some(stream);
                    if remaining[i].fetch_sub(1, Ordering::AcqRel) == 1 {
                        let per_shard = streams[i]
                            .iter()
                            .enumerate()
                            .map(|(si, slot)| {
                                let outcome = slot
                                    .lock()
                                    .expect("stream slot lock")
                                    .take()
                                    .expect("every shard slot resolves before gather");
                                (ShardId(si as u32), outcome)
                            })
                            .collect();
                        let answer = pin.gather(per_shard, w.k).expect("churn request evaluates");
                        let t0 = started[i]
                            .lock()
                            .expect("request start lock")
                            .expect("request start recorded before gather");
                        latency.record_duration(t0.elapsed());
                        requests.inc();
                        *answers[i].lock().expect("answer slot lock") = Some(answer);
                    }
                }
            });
        }
        for task in 0..n * shards {
            if !queue.push(task) {
                break; // a worker panicked; the scope join re-panics below
            }
        }
        queue.close();
    });
    answers
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("answer slot lock")
                .expect("every admitted request resolves")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::EngineConfig;
    use simvid_obs::Registry;
    use simvid_picture::{CacheConfig, LiveConfig, ScoringConfig};
    use std::sync::Arc;

    fn config() -> ChurnConfig {
        ChurnConfig {
            videos: 5,
            shots: 10,
            requests: 18,
            batches: 2,
            ..ChurnConfig::default()
        }
    }

    fn live(w: &ChurnWorkload, cfg: &ChurnConfig) -> LiveVideoDb {
        LiveVideoDb::new(
            w.store.clone(),
            LiveConfig {
                shards: cfg.shards,
                replicas: cfg.replicas,
                scoring: ScoringConfig::default(),
                engine: EngineConfig::default(),
                cache: CacheConfig::with_capacity(cfg.cache_capacity),
            },
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn build_is_deterministic_and_batches_are_valid() {
        let cfg = config();
        let a = build_churn(&cfg);
        let b = build_churn(&cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.batches.len(), b.batches.len());
        for ((pa, opa), (pb, opb)) in a.batches.iter().zip(&b.batches) {
            assert_eq!(pa, pb);
            assert_eq!(opa.len(), opb.len());
            for (x, y) in opa.iter().zip(opb) {
                assert_eq!(x.kind(), y.kind());
            }
        }
        // Every batch must apply cleanly in sequence.
        let mut store = a.store.clone();
        for (_, ops) in &a.batches {
            store.apply(ops).expect("generated batch is valid");
        }
        assert!(!store.is_empty(), "churn never empties the corpus");
    }

    #[test]
    fn sequential_run_advances_epochs() {
        let cfg = config();
        let w = build_churn(&cfg);
        let db = live(&w, &cfg);
        let run = run_schedule_churn(&w, &db);
        assert_eq!(run.answers.len(), w.schedule.len());
        let epochs = run.epochs();
        assert!(epochs.len() > 1, "schedule crosses at least one mutation");
        assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs increase");
        assert_eq!(run.complete(), w.schedule.len(), "no faults, no degrades");
    }

    #[test]
    fn concurrent_run_is_bit_identical_to_sequential() {
        let cfg = config();
        let w = build_churn(&cfg);
        let seq_db = live(&w, &cfg);
        let seq = run_schedule_churn(&w, &seq_db);
        for workers in [1, 2, 4] {
            let db = live(&w, &cfg);
            let conc = run_schedule_churn_concurrent(
                &w,
                &db,
                &ExecutorConfig {
                    workers,
                    queue_depth: 2 * workers,
                },
            );
            assert_eq!(conc.answers.len(), seq.answers.len());
            for ((ea, aa), (eb, ab)) in seq.answers.iter().zip(&conc.answers) {
                assert_eq!(ea, eb, "workers={workers}: epochs must align");
                assert_eq!(aa.ranked(), ab.ranked(), "workers={workers}");
            }
        }
    }
}
