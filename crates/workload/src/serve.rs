//! A repeated-traffic serving workload.
//!
//! The serving scenario the ROADMAP targets is a retrieval endpoint that
//! answers a stream of top-`k` requests against one video database, where
//! a handful of popular queries dominate the traffic. This module builds
//! that stream deterministically: a random video (see [`crate::randomvideo`]),
//! a fixed pool of query formulas exercising every engine path (conjunction,
//! `until`, `eventually`, `next`, attribute comparisons), and a seeded
//! Zipf-like request schedule over the pool — query 1 is hot, the tail is
//! cold, exactly the shape a cross-query cache thrives on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvid_core::{AtomicProvider, Engine, RankedSegment};
use simvid_htl::{parse, Formula};
use simvid_model::VideoTree;
use std::time::{Duration, Instant};

use crate::randomvideo::{generate, VideoGenConfig};

/// Parameters of the serving workload.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shots in the served video (leaves of a two-level tree).
    pub shots: u32,
    /// Number of requests in the schedule.
    pub requests: usize,
    /// Skew of the query popularity distribution: request `r` picks query
    /// `i` with probability ∝ `1 / (i + 1)^zipf_exponent`. `0.0` is
    /// uniform; larger is hotter.
    pub zipf_exponent: f64,
    /// `k` of the top-`k` request each schedule slot issues.
    pub k: usize,
    /// Seed for both the video and the schedule.
    pub seed: u64,
    /// Capacity of the warm system's atomic-result cache (`0` disables
    /// caching — useful for demonstrating what the bench gate catches).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shots: 400,
            requests: 200,
            zipf_exponent: 1.1,
            k: 10,
            seed: 97,
            cache_capacity: 1024,
        }
    }
}

/// A fully materialised serving workload: the video, the query pool, and
/// the request schedule (indices into the pool).
pub struct ServeWorkload {
    /// The served video: a two-level tree (`video` → `shot`).
    pub tree: VideoTree,
    /// The query pool, hottest first.
    pub queries: Vec<Formula>,
    /// The request schedule: `schedule[r]` indexes into `queries`.
    pub schedule: Vec<usize>,
    /// Top-`k` size of every request.
    pub k: usize,
}

impl ServeWorkload {
    /// The depth requests are evaluated at (the shot level).
    #[must_use]
    pub fn depth(&self) -> u8 {
        1
    }

    /// How many distinct queries the schedule actually touches.
    #[must_use]
    pub fn distinct_queries(&self) -> usize {
        let mut seen = vec![false; self.queries.len()];
        for &q in &self.schedule {
            seen[q] = true;
        }
        seen.iter().filter(|s| **s).count()
    }
}

/// The outcome of driving one request schedule through an engine.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Per-request ranked top-`k` answers, in schedule order.
    pub results: Vec<Vec<RankedSegment>>,
    /// Wall time of the whole schedule.
    pub elapsed: Duration,
    /// Entries dropped by the upper-bound top-`k` paths, summed over the
    /// schedule.
    pub entries_pruned: usize,
}

/// Drives the request schedule through `engine`, one top-`k` retrieval
/// per slot.
///
/// Each request increments the `serve.requests` counter and records its
/// end-to-end latency into the `serve.request_seconds` histogram of the
/// engine's [`simvid_obs::Registry`] — share a registry across the engine
/// and picture system ([`Engine::with_registry`]) and one snapshot yields
/// the whole serving profile: per-operator spans, cache behaviour, and
/// request latency quantiles.
///
/// # Panics
///
/// Panics if a pool query fails to evaluate (the pool is fixed and
/// closed, so this indicates an engine bug).
#[must_use]
pub fn run_schedule<P: AtomicProvider>(w: &ServeWorkload, engine: &Engine<P>) -> ScheduleRun {
    let requests = engine.registry().counter("serve.requests");
    let latency = engine.registry().histogram("serve.request_seconds");
    let depth = w.depth();
    let mut entries_pruned = 0;
    let start = Instant::now();
    let results = w
        .schedule
        .iter()
        .map(|&q| {
            let t0 = Instant::now();
            let out = engine
                .top_k_closed(&w.queries[q], depth, w.k)
                .expect("serve request evaluates");
            latency.record_duration(t0.elapsed());
            requests.inc();
            entries_pruned += engine.stats().entries_pruned;
            out
        })
        .collect();
    ScheduleRun {
        results,
        elapsed: start.elapsed(),
        entries_pruned,
    }
}

/// The fixed query pool, hottest first. Every formula is closed (no free
/// variables) so each request is a ranked top-`k` retrieval; together they
/// exercise conjunction pruning, `until`, `eventually`, `next` and
/// attribute comparisons.
#[must_use]
pub fn query_pool() -> Vec<Formula> {
    [
        "exists x . person(x) and moving(x)",
        "(exists x . person(x)) until (exists y . horse(y))",
        "eventually (exists x . holds_gun(x))",
        "exists x . exists y . person(y) and near(x, y) and moving(x) and height(x) > 100",
        "exists x . person(x) and eventually (exists y . near(x, y))",
        "next (exists x . moving(x))",
        "exists x . height(x) > 150",
        "(exists x . moving(x)) and eventually (exists y . fires_at(y))",
    ]
    .iter()
    .map(|q| parse(q).expect("serve pool formula parses"))
    .collect()
}

/// Builds the workload. Deterministic in `cfg.seed`.
#[must_use]
pub fn build(cfg: &ServeConfig) -> ServeWorkload {
    let tree = generate(
        &VideoGenConfig {
            branching: vec![cfg.shots],
            object_count: 10,
            objects_per_leaf: 3.0,
            ..VideoGenConfig::default()
        },
        cfg.seed,
    );
    let queries = query_pool();
    // Zipf-like sampling by inverse-power weights over the pool ranks.
    let weights: Vec<f64> = (0..queries.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let schedule = (0..cfg.requests)
        .map(|_| {
            let mut pick = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    return i;
                }
                pick -= w;
            }
            queries.len() - 1
        })
        .collect();
    ServeWorkload {
        tree,
        queries,
        schedule,
        k: cfg.k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::{classify, FormulaClass};

    #[test]
    fn deterministic_in_seed() {
        let cfg = ServeConfig {
            shots: 20,
            requests: 50,
            ..ServeConfig::default()
        };
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.tree.segment_count(), b.tree.segment_count());
    }

    #[test]
    fn schedule_is_skewed_towards_the_head() {
        let w = build(&ServeConfig {
            shots: 4,
            requests: 400,
            ..ServeConfig::default()
        });
        let head = w.schedule.iter().filter(|&&q| q == 0).count();
        let tail = w
            .schedule
            .iter()
            .filter(|&&q| q + 1 == w.queries.len())
            .count();
        assert!(
            head > tail,
            "hot query ({head} hits) should beat the tail ({tail} hits)"
        );
        assert!(w.distinct_queries() > 1, "more than one query in play");
    }

    #[test]
    fn pool_formulas_are_closed_and_evaluable() {
        for f in query_pool() {
            assert_ne!(
                classify(&f),
                FormulaClass::General,
                "serve pool must stay inside the engine's fragment: {f}"
            );
        }
    }
}
