//! A repeated-traffic serving workload.
//!
//! The serving scenario the ROADMAP targets is a retrieval endpoint that
//! answers a stream of top-`k` requests against one video database, where
//! a handful of popular queries dominate the traffic. This module builds
//! that stream deterministically: a random video (see [`crate::randomvideo`]),
//! a fixed pool of query formulas exercising every engine path (conjunction,
//! `until`, `eventually`, `next`, attribute comparisons), and a seeded
//! Zipf-like request schedule over the pool — query 1 is hot, the tail is
//! cold, exactly the shape a cross-query cache thrives on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvid_core::{
    AtomicProvider, Budget, Engine, EngineConfig, EngineError, Interval, RankedSegment, TopKAnswer,
};
use simvid_htl::{parse, Formula};
use simvid_model::VideoTree;
use simvid_obs::Registry;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::randomvideo::{generate, VideoGenConfig};

/// Parameters of the serving workload.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shots in the served video (leaves of a two-level tree).
    pub shots: u32,
    /// Number of requests in the schedule.
    pub requests: usize,
    /// Skew of the query popularity distribution: request `r` picks query
    /// `i` with probability ∝ `1 / (i + 1)^zipf_exponent`. `0.0` is
    /// uniform; larger is hotter.
    pub zipf_exponent: f64,
    /// `k` of the top-`k` request each schedule slot issues.
    pub k: usize,
    /// Seed for both the video and the schedule.
    pub seed: u64,
    /// Capacity of the warm system's atomic-result cache (`0` disables
    /// caching — useful for demonstrating what the bench gate catches).
    pub cache_capacity: usize,
    /// Worker threads of the concurrent executor (see
    /// [`run_schedule_concurrent`]). `1` still goes through the pool —
    /// use [`run_schedule`] for the plain sequential loop.
    pub workers: usize,
    /// Capacity of the executor's bounded request queue; the producer
    /// blocks when it is full, bounding admitted-but-unserved work.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ServeConfig {
            shots: 400,
            requests: 200,
            zipf_exponent: 1.1,
            k: 10,
            seed: 97,
            cache_capacity: 1024,
            workers,
            queue_depth: 2 * workers,
        }
    }
}

/// A fully materialised serving workload: the video, the query pool, and
/// the request schedule (indices into the pool).
pub struct ServeWorkload {
    /// The served video: a two-level tree (`video` → `shot`).
    pub tree: VideoTree,
    /// The query pool, hottest first.
    pub queries: Vec<Formula>,
    /// The request schedule: `schedule[r]` indexes into `queries`.
    pub schedule: Vec<usize>,
    /// Top-`k` size of every request.
    pub k: usize,
}

impl ServeWorkload {
    /// The depth requests are evaluated at (the shot level).
    #[must_use]
    pub fn depth(&self) -> u8 {
        1
    }

    /// How many distinct queries the schedule actually touches.
    #[must_use]
    pub fn distinct_queries(&self) -> usize {
        let mut seen = vec![false; self.queries.len()];
        for &q in &self.schedule {
            seen[q] = true;
        }
        seen.iter().filter(|s| **s).count()
    }
}

/// The outcome of driving one request schedule through an engine.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Per-request ranked top-`k` answers, in schedule order.
    pub results: Vec<Vec<RankedSegment>>,
    /// Wall time of the whole schedule.
    pub elapsed: Duration,
    /// Entries dropped by the upper-bound top-`k` paths, summed over the
    /// schedule.
    pub entries_pruned: usize,
}

/// Drives the request schedule through `engine`, one top-`k` retrieval
/// per slot.
///
/// Each request increments the `serve.requests` counter and records its
/// end-to-end latency into the `serve.request_seconds` histogram of the
/// engine's [`simvid_obs::Registry`] — share a registry across the engine
/// and picture system ([`Engine::with_registry`]) and one snapshot yields
/// the whole serving profile: per-operator spans, cache behaviour, and
/// request latency quantiles.
///
/// # Panics
///
/// Panics if a pool query fails to evaluate (the pool is fixed and
/// closed, so this indicates an engine bug).
#[must_use]
pub fn run_schedule<P: AtomicProvider>(w: &ServeWorkload, engine: &Engine<P>) -> ScheduleRun {
    let requests = engine.registry().counter("serve.requests");
    let latency = engine.registry().histogram("serve.request_seconds");
    let depth = w.depth();
    let mut entries_pruned = 0;
    let start = Instant::now();
    let results = w
        .schedule
        .iter()
        .map(|&q| {
            let t0 = Instant::now();
            let out = engine
                .top_k_closed(&w.queries[q], depth, w.k)
                .expect("serve request evaluates");
            latency.record_duration(t0.elapsed());
            requests.inc();
            entries_pruned += engine.stats().entries_pruned;
            out
        })
        .collect();
    ScheduleRun {
        results,
        elapsed: start.elapsed(),
        entries_pruned,
    }
}

/// How a single resilient request resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The full top-`k` ranking, identical to what [`run_schedule`] would
    /// have produced.
    Ok,
    /// A partial ranking with sound upper bounds on the unresolved
    /// segments (budget violation or a provider that gave up after
    /// retries).
    Degraded,
    /// No usable answer: a worker panic was captured, or the engine
    /// rejected the request outright.
    Failed,
    /// The request was rejected at admission: the executor queue was
    /// saturated and the admission policy chose load shedding over
    /// blocking (see [`AdmissionConfig::shed_when_full`]). Never
    /// evaluated, so there is no partial answer — callers retry against
    /// another instance.
    Shed,
}

/// The record of one request driven through the resilient serving path.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestReport {
    /// Index into the workload's query pool.
    pub query: usize,
    /// How the request resolved.
    pub outcome: RequestOutcome,
    /// The ranking: complete for [`RequestOutcome::Ok`], partial (possibly
    /// empty) otherwise. Every listed value is a sound *lower* bound on
    /// the segment's true similarity.
    pub ranked: Vec<RankedSegment>,
    /// Sound *upper* bounds on the segments the evaluation did not
    /// resolve; empty for [`RequestOutcome::Ok`].
    pub upper_bounds: Vec<(Interval, f64)>,
    /// Why the request degraded or failed (`None` for
    /// [`RequestOutcome::Ok`]). Deterministic for a fixed fault plan, so
    /// chaos runs can be compared across engines byte for byte.
    pub reason: Option<String>,
}

/// The outcome of driving one request schedule through the resilient path.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// One report per schedule slot, in schedule order.
    pub reports: Vec<RequestReport>,
    /// Wall time of the whole schedule.
    pub elapsed: Duration,
}

impl ResilientRun {
    /// How many requests resolved with the given outcome.
    #[must_use]
    pub fn count(&self, outcome: RequestOutcome) -> usize {
        self.reports.iter().filter(|r| r.outcome == outcome).count()
    }
}

/// Per-request limits applied by [`run_schedule_resilient`]. The default
/// is unlimited: no deadline, no fuel cap.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestLimits {
    /// Wall-clock deadline per request.
    pub deadline: Option<Duration>,
    /// Fuel allowance per request (units of uncached subformula
    /// evaluations).
    pub fuel: Option<u64>,
}

impl RequestLimits {
    fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(deadline) = self.deadline {
            b = b.with_deadline(deadline);
        }
        if let Some(fuel) = self.fuel {
            b = b.with_fuel(fuel);
        }
        b
    }
}

/// Drives the request schedule through the engine's *resilient* top-`k`
/// path: every request gets a fresh [`Budget`] from `limits`, and every
/// request resolves to a classified [`RequestReport`] — the schedule never
/// aborts, whatever the provider throws at it.
///
/// `before_request` runs before each slot with the slot index; fault
/// injection harnesses use it to re-key their deterministic fault schedule
/// per request (e.g. `FaultyProvider::set_epoch`).
///
/// Outcomes are counted in the engine registry under `serve.outcome.ok` /
/// `serve.outcome.degraded` / `serve.outcome.failed`, next to the same
/// `serve.requests` counter and `serve.request_seconds` histogram
/// [`run_schedule`] records.
#[must_use]
pub fn run_schedule_resilient<P: AtomicProvider>(
    w: &ServeWorkload,
    engine: &Engine<P>,
    limits: RequestLimits,
    mut before_request: impl FnMut(usize),
) -> ResilientRun {
    let requests = engine.registry().counter("serve.requests");
    let latency = engine.registry().histogram("serve.request_seconds");
    let ok = engine.registry().counter("serve.outcome.ok");
    let degraded = engine.registry().counter("serve.outcome.degraded");
    let failed = engine.registry().counter("serve.outcome.failed");
    let shed = engine.registry().counter("serve.outcome.shed");
    let depth = w.depth();
    let start = Instant::now();
    let reports = w
        .schedule
        .iter()
        .enumerate()
        .map(|(r, &q)| {
            before_request(r);
            let budget = limits.budget();
            let t0 = Instant::now();
            let report = resolve_request(w, engine, q, depth, w.k, &budget);
            latency.record_duration(t0.elapsed());
            requests.inc();
            match report.outcome {
                RequestOutcome::Ok => ok.inc(),
                RequestOutcome::Degraded => degraded.inc(),
                RequestOutcome::Failed => failed.inc(),
                RequestOutcome::Shed => shed.inc(),
            }
            report
        })
        .collect();
    ResilientRun {
        reports,
        elapsed: start.elapsed(),
    }
}

/// Evaluates one resilient request and classifies the answer into a
/// [`RequestReport`]. Shared by the sequential and concurrent resilient
/// paths so a request classifies identically wherever it runs; counters
/// are the caller's job — each request is counted exactly once, by whoever
/// resolved it.
fn resolve_request<P: AtomicProvider>(
    w: &ServeWorkload,
    engine: &Engine<P>,
    q: usize,
    depth: u8,
    k: usize,
    budget: &Budget,
) -> RequestReport {
    // Belt and braces: the engine already catches panics at its worker
    // joins and at the resilient boundary, but a serving loop must survive
    // even a panic in a path that boundary does not cover.
    let answer = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.top_k_closed_resilient(&w.queries[q], depth, k, budget)
    }))
    .unwrap_or_else(|p| {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        Err(EngineError::WorkerPanic(msg))
    });
    match answer {
        Ok(TopKAnswer::Complete(ranked)) => RequestReport {
            query: q,
            outcome: RequestOutcome::Ok,
            ranked,
            upper_bounds: Vec::new(),
            reason: None,
        },
        // A captured panic means the evaluation state is suspect:
        // classify as failed even though partial data came back.
        Ok(TopKAnswer::Degraded(d)) => RequestReport {
            query: q,
            outcome: if matches!(d.reason, EngineError::WorkerPanic(_)) {
                RequestOutcome::Failed
            } else {
                RequestOutcome::Degraded
            },
            ranked: d.ranked_so_far,
            upper_bounds: d.unresolved_upper_bounds,
            reason: Some(d.reason.to_string()),
        },
        Err(e) => RequestReport {
            query: q,
            outcome: RequestOutcome::Failed,
            ranked: Vec::new(),
            upper_bounds: Vec::new(),
            reason: Some(e.to_string()),
        },
    }
}

/// Shape of the concurrent serving executor: how many worker threads
/// drain the schedule, and how much admitted-but-unserved work the
/// bounded request queue may hold (the producer blocks when it is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads in the fixed-size pool (at least 1).
    pub workers: usize,
    /// Bounded queue capacity (at least 1).
    pub queue_depth: usize,
}

impl ExecutorConfig {
    /// An executor of `workers` threads with the default queue depth of
    /// twice the pool size.
    #[must_use]
    pub fn with_workers(workers: usize) -> ExecutorConfig {
        let workers = workers.max(1);
        ExecutorConfig {
            workers,
            queue_depth: 2 * workers,
        }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::with_workers(
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        )
    }
}

impl From<&ServeConfig> for ExecutorConfig {
    fn from(cfg: &ServeConfig) -> Self {
        ExecutorConfig {
            workers: cfg.workers.max(1),
            queue_depth: cfg.queue_depth.max(1),
        }
    }
}

/// Scheduling class of one admitted request. High-priority requests jump
/// the normal lane of the executor queue — admission order within a lane
/// stays FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before any queued normal-priority request.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// What [`BoundedQueue::try_push`] did with the offered item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryPush {
    /// Enqueued.
    Admitted,
    /// The queue is at capacity; the item was not enqueued.
    Full,
    /// The queue closed early (a worker panicked); the item was not
    /// enqueued.
    Closed,
}

/// The bounded MPMC request queue between the schedule producer and the
/// worker pool: two FIFO lanes ([`Priority::High`] drains first), a shared
/// capacity across both. Backpressure by blocking — `push` waits while the
/// queue is full, `pop` waits while it is empty and not yet closed — or by
/// shedding through the non-blocking [`BoundedQueue::try_push`].
///
/// The `serve.queue_depth` gauge mirrors the live length, and every
/// producer blocked on a full queue first counts one
/// `serve.queue.full_waits` — the saturation signal admission control
/// keys off.
pub(crate) struct BoundedQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    depth: Arc<simvid_obs::Gauge>,
    full_waits: Arc<simvid_obs::Counter>,
}

struct QueueState {
    high: VecDeque<usize>,
    normal: VecDeque<usize>,
    closed: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn lane(&mut self, priority: Priority) -> &mut VecDeque<usize> {
        match priority {
            Priority::High => &mut self.high,
            Priority::Normal => &mut self.normal,
        }
    }
}

impl BoundedQueue {
    pub(crate) fn new(capacity: usize, registry: &Registry) -> BoundedQueue {
        BoundedQueue {
            state: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            depth: registry.gauge("serve.queue_depth"),
            full_waits: registry.counter("serve.queue.full_waits"),
        }
    }

    /// Admits `item` at normal priority, blocking while the queue is full.
    /// Returns `false` without admitting when the queue closed early (a
    /// worker panicked).
    pub(crate) fn push(&self, item: usize) -> bool {
        self.push_with(item, Priority::Normal)
    }

    /// Admits `item` into its priority lane, blocking while the queue is
    /// full (counted in `serve.queue.full_waits`). Returns `false` without
    /// admitting when the queue closed early.
    pub(crate) fn push_with(&self, item: usize, priority: Priority) -> bool {
        let mut st = self.state.lock().expect("serve queue lock");
        if st.len() >= self.capacity && !st.closed {
            self.full_waits.inc();
            while st.len() >= self.capacity && !st.closed {
                st = self.not_full.wait(st).expect("serve queue lock");
            }
        }
        if st.closed {
            return false;
        }
        st.lane(priority).push_back(item);
        self.depth.add(1);
        self.not_empty.notify_one();
        true
    }

    /// Offers `item` without blocking: [`TryPush::Full`] when the queue is
    /// saturated — the load-shed path of [`run_schedule_admission`].
    pub(crate) fn try_push(&self, item: usize, priority: Priority) -> TryPush {
        let mut st = self.state.lock().expect("serve queue lock");
        if st.closed {
            return TryPush::Closed;
        }
        if st.len() >= self.capacity {
            return TryPush::Full;
        }
        st.lane(priority).push_back(item);
        self.depth.add(1);
        self.not_empty.notify_one();
        TryPush::Admitted
    }

    /// The live queue length (both lanes) — the brownout watermark signal.
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("serve queue lock").len()
    }

    /// The next request index — high lane first — or `None` once the
    /// queue is closed and drained.
    pub(crate) fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("serve queue lock");
        loop {
            if let Some(item) = st.high.pop_front().or_else(|| st.normal.pop_front()) {
                self.depth.sub(1);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("serve queue lock");
        }
    }

    pub(crate) fn close(&self) {
        // Runs from a panicking worker's drop guard too: recover from the
        // (unlikely) poisoned lock rather than aborting on double panic.
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue when a worker unwinds, so the producer and sibling
/// workers drain and exit instead of blocking forever; the panic itself
/// resurfaces at the thread-scope join.
pub(crate) struct CloseOnPanic<'a>(pub(crate) &'a BoundedQueue);

impl Drop for CloseOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// Drives the request schedule through a fixed-size pool of
/// `exec.workers` threads (a [`std::thread::scope`] — no runtime
/// dependency) fed by a bounded queue, and returns results **in original
/// schedule order** regardless of completion order: each worker writes
/// into the slot of the request it served.
///
/// Every worker builds its own [`Engine`] over the shared `provider` and
/// `registry`, so per-evaluation memo state stays request-private — the
/// only cross-request sharing is the provider's atomic-result cache,
/// whose singleflight layer coalesces concurrent misses on one key into
/// a single computation. Results are therefore bit-identical to
/// [`run_schedule`] for every worker count: rankings never depend on
/// cache state, only the work to produce them does.
///
/// On top of the sequential path's `serve.requests` /
/// `serve.request_seconds` metrics this records the `serve.queue_depth`
/// gauge, one `serve.worker.{i}.request_seconds` histogram per worker,
/// and `serve.inflight_coalesced` — how many lookups of this run
/// coalesced onto another request's in-flight computation instead of
/// recomputing.
///
/// # Panics
///
/// As [`run_schedule`]: panics if a pool query fails to evaluate. A
/// panicking worker closes the queue so the pool shuts down instead of
/// deadlocking, and the panic resurfaces here.
#[must_use]
pub fn run_schedule_concurrent<P: AtomicProvider>(
    w: &ServeWorkload,
    provider: &P,
    engine_config: EngineConfig,
    registry: &Arc<Registry>,
    exec: &ExecutorConfig,
) -> ScheduleRun {
    let workers = exec.workers.max(1);
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let coalesced_total = registry.counter("cache.coalesced");
    let pruned_total = registry.counter("engine.prune.entries_pruned");
    let inflight_coalesced = registry.counter("serve.inflight_coalesced");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let slots: Vec<Mutex<Option<Vec<RankedSegment>>>> =
        w.schedule.iter().map(|_| Mutex::new(None)).collect();
    let coalesced_before = coalesced_total.get();
    let pruned_before = pruned_total.get();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let requests = &requests;
            let latency = &latency;
            let worker_latency = registry.histogram(&format!("serve.worker.{wid}.request_seconds"));
            let registry = Arc::clone(registry);
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                let engine = Engine::with_registry(provider, &w.tree, engine_config, registry);
                while let Some(r) = queue.pop() {
                    let t0 = Instant::now();
                    let out = engine
                        .top_k_closed(&w.queries[w.schedule[r]], depth, w.k)
                        .expect("serve request evaluates");
                    let elapsed = t0.elapsed();
                    latency.record_duration(elapsed);
                    worker_latency.record_duration(elapsed);
                    requests.inc();
                    *slots[r].lock().expect("result slot lock") = Some(out);
                }
            });
        }
        for r in 0..w.schedule.len() {
            if !queue.push(r) {
                break; // a worker panicked; the scope join re-panics below
            }
        }
        queue.close();
    });
    inflight_coalesced.add(coalesced_total.get() - coalesced_before);
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every admitted request resolves")
        })
        .collect();
    ScheduleRun {
        results,
        elapsed: start.elapsed(),
        // Summed over the whole run from the shared registry: per-request
        // engine deltas are not meaningful when workers interleave, but
        // the cumulative counter is exact and equals the sequential sum.
        entries_pruned: (pruned_total.get() - pruned_before) as usize,
    }
}

/// Concurrent twin of [`run_schedule_resilient`]: the same fixed-size
/// worker pool and bounded queue as [`run_schedule_concurrent`], with
/// every request resolved to a classified [`RequestReport`]. Reports come
/// back **in schedule order** whatever order requests complete in, and
/// each request increments exactly one `serve.outcome.*` counter — on the
/// worker that resolved it, so the counters are exact under concurrent
/// completion.
///
/// Per-request [`Budget`]s are inherited from `limits` as in the
/// sequential path. `cancel` is an optional schedule-level budget for
/// cooperative cancellation: once it is violated (deadline passed, fuel
/// exhausted, or [`Budget::cancel`] called from another thread), every
/// not-yet-evaluated request's budget is cancelled up front, so the pool
/// drains quickly with degraded answers (sound upper bounds) instead of
/// evaluating doomed work.
///
/// `before_request` runs on the worker thread that evaluates the slot,
/// immediately before evaluation — fault harnesses pin their per-thread
/// epoch there (e.g. `FaultyProvider::set_thread_epoch`). It must be
/// `Fn + Sync` since slots resolve concurrently.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_schedule_resilient_concurrent<P: AtomicProvider>(
    w: &ServeWorkload,
    provider: &P,
    engine_config: EngineConfig,
    registry: &Arc<Registry>,
    limits: RequestLimits,
    exec: &ExecutorConfig,
    cancel: Option<&Budget>,
    before_request: impl Fn(usize) + Sync,
) -> ResilientRun {
    let workers = exec.workers.max(1);
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let ok = registry.counter("serve.outcome.ok");
    let degraded = registry.counter("serve.outcome.degraded");
    let failed = registry.counter("serve.outcome.failed");
    let shed = registry.counter("serve.outcome.shed");
    let coalesced_total = registry.counter("cache.coalesced");
    let inflight_coalesced = registry.counter("serve.inflight_coalesced");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let slots: Vec<Mutex<Option<RequestReport>>> =
        w.schedule.iter().map(|_| Mutex::new(None)).collect();
    let coalesced_before = coalesced_total.get();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let requests = &requests;
            let latency = &latency;
            let (ok, degraded, failed, shed) = (&ok, &degraded, &failed, &shed);
            let before_request = &before_request;
            let worker_latency = registry.histogram(&format!("serve.worker.{wid}.request_seconds"));
            let registry = Arc::clone(registry);
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                let engine = Engine::with_registry(provider, &w.tree, engine_config, registry);
                while let Some(r) = queue.pop() {
                    before_request(r);
                    let budget = limits.budget();
                    if cancel.is_some_and(|c| c.check().is_err()) {
                        budget.cancel();
                    }
                    let t0 = Instant::now();
                    let report = resolve_request(w, &engine, w.schedule[r], depth, w.k, &budget);
                    let elapsed = t0.elapsed();
                    latency.record_duration(elapsed);
                    worker_latency.record_duration(elapsed);
                    requests.inc();
                    match report.outcome {
                        RequestOutcome::Ok => ok.inc(),
                        RequestOutcome::Degraded => degraded.inc(),
                        RequestOutcome::Failed => failed.inc(),
                        RequestOutcome::Shed => shed.inc(),
                    }
                    *slots[r].lock().expect("report slot lock") = Some(report);
                }
            });
        }
        for r in 0..w.schedule.len() {
            if !queue.push(r) {
                break;
            }
        }
        queue.close();
    });
    inflight_coalesced.add(coalesced_total.get() - coalesced_before);
    let reports = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("report slot lock")
                .expect("every admitted request resolves")
        })
        .collect();
    ResilientRun {
        reports,
        elapsed: start.elapsed(),
    }
}

/// Degraded-service tuning applied while the executor queue sits at or
/// above its watermark: requests are evaluated with a smaller `k` and an
/// optional fuel cap, trading answer size for admission capacity instead
/// of queueing or shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Queue length (at pop time) at or above which a request is served
    /// browned-out. `0` browns out everything; `usize::MAX` effectively
    /// disables brownout.
    pub watermark: usize,
    /// The lowered top-`k` size under brownout (the effective `k` is the
    /// minimum of this and the workload's `k`).
    pub k: usize,
    /// Additional fuel cap under brownout, on top of the request's normal
    /// [`RequestLimits`].
    pub fuel: Option<u64>,
}

/// Admission policy of [`run_schedule_admission`]: what happens when the
/// bounded queue is full, and whether saturation lowers service quality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// `true` sheds on a full queue ([`RequestOutcome::Shed`], counted in
    /// `serve.outcome.shed`) instead of blocking the producer; `false`
    /// keeps the blocking backpressure of the plain executor (waits
    /// counted in `serve.queue.full_waits` either way).
    pub shed_when_full: bool,
    /// Brownout mode, if any.
    pub brownout: Option<BrownoutConfig>,
}

/// [`run_schedule_resilient_concurrent`] with admission control: a
/// per-request [`Priority`] routes each request into the queue's high or
/// normal lane, a saturated queue either sheds or blocks per
/// [`AdmissionConfig::shed_when_full`], and queue pressure at serve time
/// can brown requests out ([`BrownoutConfig`]) — lowering `k` and capping
/// fuel rather than turning work away.
///
/// Shed requests resolve producer-side to [`RequestOutcome::Shed`] with an
/// [`EngineError::Overloaded`] reason and are counted in `serve.requests`
/// and `serve.outcome.shed` like any other outcome; browned-out requests
/// count `serve.brownout.requests`. With shedding off, no brownout, and a
/// uniform priority, this is exactly the resilient concurrent executor:
/// same queue, same budgets, bit-identical reports.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_schedule_admission<P: AtomicProvider>(
    w: &ServeWorkload,
    provider: &P,
    engine_config: EngineConfig,
    registry: &Arc<Registry>,
    limits: RequestLimits,
    exec: &ExecutorConfig,
    admission: &AdmissionConfig,
    priority: impl Fn(usize) -> Priority + Sync,
) -> ResilientRun {
    let workers = exec.workers.max(1);
    let requests = registry.counter("serve.requests");
    let latency = registry.histogram("serve.request_seconds");
    let ok = registry.counter("serve.outcome.ok");
    let degraded = registry.counter("serve.outcome.degraded");
    let failed = registry.counter("serve.outcome.failed");
    let shed = registry.counter("serve.outcome.shed");
    let browned = registry.counter("serve.brownout.requests");
    let coalesced_total = registry.counter("cache.coalesced");
    let inflight_coalesced = registry.counter("serve.inflight_coalesced");
    let queue = BoundedQueue::new(exec.queue_depth.max(1), registry);
    let depth = w.depth();
    let slots: Vec<Mutex<Option<RequestReport>>> =
        w.schedule.iter().map(|_| Mutex::new(None)).collect();
    let coalesced_before = coalesced_total.get();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let requests = &requests;
            let latency = &latency;
            let (ok, degraded, failed, shed) = (&ok, &degraded, &failed, &shed);
            let browned = &browned;
            let worker_latency = registry.histogram(&format!("serve.worker.{wid}.request_seconds"));
            let registry = Arc::clone(registry);
            scope.spawn(move || {
                let _guard = CloseOnPanic(queue);
                let engine = Engine::with_registry(provider, &w.tree, engine_config, registry);
                while let Some(r) = queue.pop() {
                    // Brownout is decided at serve time from live queue
                    // pressure: the backlog behind this request, not the
                    // backlog when it was admitted.
                    let brownout = admission.brownout.filter(|b| queue.len() >= b.watermark);
                    let mut k = w.k;
                    let mut budget = limits.budget();
                    if let Some(b) = brownout {
                        browned.inc();
                        k = k.min(b.k);
                        if let Some(fuel) = b.fuel {
                            budget = budget.with_fuel(fuel);
                        }
                    }
                    let t0 = Instant::now();
                    let report = resolve_request(w, &engine, w.schedule[r], depth, k, &budget);
                    let elapsed = t0.elapsed();
                    latency.record_duration(elapsed);
                    worker_latency.record_duration(elapsed);
                    requests.inc();
                    match report.outcome {
                        RequestOutcome::Ok => ok.inc(),
                        RequestOutcome::Degraded => degraded.inc(),
                        RequestOutcome::Failed => failed.inc(),
                        RequestOutcome::Shed => shed.inc(),
                    }
                    *slots[r].lock().expect("report slot lock") = Some(report);
                }
            });
        }
        'produce: for (r, slot) in slots.iter().enumerate().take(w.schedule.len()) {
            let lane = priority(r);
            if admission.shed_when_full {
                match queue.try_push(r, lane) {
                    TryPush::Admitted => {}
                    TryPush::Closed => break 'produce,
                    TryPush::Full => {
                        let report = RequestReport {
                            query: w.schedule[r],
                            outcome: RequestOutcome::Shed,
                            ranked: Vec::new(),
                            upper_bounds: Vec::new(),
                            reason: Some(
                                EngineError::Overloaded("executor queue full".into()).to_string(),
                            ),
                        };
                        requests.inc();
                        shed.inc();
                        *slot.lock().expect("report slot lock") = Some(report);
                    }
                }
            } else if !queue.push_with(r, lane) {
                break 'produce;
            }
        }
        queue.close();
    });
    inflight_coalesced.add(coalesced_total.get() - coalesced_before);
    let reports = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("report slot lock")
                .expect("every admitted request resolves")
        })
        .collect();
    ResilientRun {
        reports,
        elapsed: start.elapsed(),
    }
}

/// The fixed query pool, hottest first. Every formula is closed (no free
/// variables) so each request is a ranked top-`k` retrieval; together they
/// exercise conjunction pruning, `until`, `eventually`, `next` and
/// attribute comparisons.
#[must_use]
pub fn query_pool() -> Vec<Formula> {
    [
        "exists x . person(x) and moving(x)",
        "(exists x . person(x)) until (exists y . horse(y))",
        "eventually (exists x . holds_gun(x))",
        "exists x . exists y . person(y) and near(x, y) and moving(x) and height(x) > 100",
        "exists x . person(x) and eventually (exists y . near(x, y))",
        "next (exists x . moving(x))",
        "exists x . height(x) > 150",
        "(exists x . moving(x)) and eventually (exists y . fires_at(y))",
    ]
    .iter()
    .map(|q| parse(q).expect("serve pool formula parses"))
    .collect()
}

/// Builds the workload. Deterministic in `cfg.seed`.
#[must_use]
pub fn build(cfg: &ServeConfig) -> ServeWorkload {
    let tree = generate(
        &VideoGenConfig {
            branching: vec![cfg.shots],
            object_count: 10,
            objects_per_leaf: 3.0,
            ..VideoGenConfig::default()
        },
        cfg.seed,
    );
    let queries = query_pool();
    // Zipf-like sampling by inverse-power weights over the pool ranks.
    let weights: Vec<f64> = (0..queries.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.zipf_exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let schedule = (0..cfg.requests)
        .map(|_| {
            let mut pick = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    return i;
                }
                pick -= w;
            }
            queries.len() - 1
        })
        .collect();
    ServeWorkload {
        tree,
        queries,
        schedule,
        k: cfg.k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::{classify, FormulaClass};

    #[test]
    fn deterministic_in_seed() {
        let cfg = ServeConfig {
            shots: 20,
            requests: 50,
            ..ServeConfig::default()
        };
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.tree.segment_count(), b.tree.segment_count());
    }

    #[test]
    fn schedule_is_skewed_towards_the_head() {
        let w = build(&ServeConfig {
            shots: 4,
            requests: 400,
            ..ServeConfig::default()
        });
        let head = w.schedule.iter().filter(|&&q| q == 0).count();
        let tail = w
            .schedule
            .iter()
            .filter(|&&q| q + 1 == w.queries.len())
            .count();
        assert!(
            head > tail,
            "hot query ({head} hits) should beat the tail ({tail} hits)"
        );
        assert!(w.distinct_queries() > 1, "more than one query in play");
    }

    #[test]
    fn resilient_fault_free_matches_plain_schedule() {
        let cfg = ServeConfig {
            shots: 12,
            requests: 16,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let sys =
            simvid_picture::PictureSystem::new(&w.tree, simvid_picture::ScoringConfig::default());
        let engine = Engine::new(&sys, &w.tree);
        let plain = run_schedule(&w, &engine);
        let resilient = run_schedule_resilient(&w, &engine, RequestLimits::default(), |_| {});
        assert_eq!(resilient.count(RequestOutcome::Ok), w.schedule.len());
        for (report, expect) in resilient.reports.iter().zip(&plain.results) {
            assert_eq!(&report.ranked, expect, "fault-free path must be identical");
            assert!(report.upper_bounds.is_empty());
            assert_eq!(report.reason, None);
        }
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("serve.outcome.ok"), Some(16));
        assert_eq!(snap.counter("serve.outcome.degraded"), Some(0));
        assert_eq!(snap.counter("serve.outcome.failed"), Some(0));
    }

    #[test]
    fn resilient_zero_deadline_degrades_without_aborting() {
        let cfg = ServeConfig {
            shots: 8,
            requests: 6,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let sys =
            simvid_picture::PictureSystem::new(&w.tree, simvid_picture::ScoringConfig::default());
        let engine = Engine::new(&sys, &w.tree);
        let limits = RequestLimits {
            deadline: Some(Duration::ZERO),
            fuel: None,
        };
        let run = run_schedule_resilient(&w, &engine, limits, |_| {});
        assert_eq!(run.reports.len(), 6);
        assert_eq!(run.count(RequestOutcome::Degraded), 6);
        for report in &run.reports {
            assert_eq!(report.reason.as_deref(), Some("request deadline exceeded"));
            assert!(
                !report.upper_bounds.is_empty(),
                "degraded answers carry upper bounds"
            );
        }
    }

    #[test]
    fn concurrent_results_match_sequential_in_schedule_order() {
        let cfg = ServeConfig {
            shots: 12,
            requests: 24,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let sys =
            simvid_picture::PictureSystem::new(&w.tree, simvid_picture::ScoringConfig::default());
        let engine = Engine::new(&sys, &w.tree);
        let sequential = run_schedule(&w, &engine);
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys2 = simvid_picture::PictureSystem::with_registry(
            &w.tree,
            simvid_picture::ScoringConfig::default(),
            simvid_picture::CacheConfig::default(),
            registry.clone(),
        );
        let concurrent = run_schedule_concurrent(
            &w,
            &sys2,
            EngineConfig::default(),
            &registry,
            &ExecutorConfig::with_workers(3),
        );
        assert_eq!(concurrent.results, sequential.results);
        assert_eq!(concurrent.entries_pruned, sequential.entries_pruned);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.requests"), Some(24));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
    }

    #[test]
    fn concurrent_resilient_zero_deadline_reports_stay_ordered() {
        let cfg = ServeConfig {
            shots: 8,
            requests: 10,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys = simvid_picture::PictureSystem::with_registry(
            &w.tree,
            simvid_picture::ScoringConfig::default(),
            simvid_picture::CacheConfig::default(),
            registry.clone(),
        );
        let limits = RequestLimits {
            deadline: Some(Duration::ZERO),
            fuel: None,
        };
        let run = run_schedule_resilient_concurrent(
            &w,
            &sys,
            EngineConfig::default(),
            &registry,
            limits,
            &ExecutorConfig::with_workers(4),
            None,
            |_| {},
        );
        assert_eq!(run.reports.len(), 10);
        assert_eq!(run.count(RequestOutcome::Degraded), 10);
        // Slot `r` must hold slot `r`'s query whatever order workers
        // finished in.
        for (report, &q) in run.reports.iter().zip(&w.schedule) {
            assert_eq!(report.query, q);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.outcome.degraded"), Some(10));
        assert_eq!(snap.counter("serve.requests"), Some(10));
    }

    #[test]
    fn cooperative_cancel_degrades_instead_of_evaluating() {
        let cfg = ServeConfig {
            shots: 8,
            requests: 6,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys = simvid_picture::PictureSystem::with_registry(
            &w.tree,
            simvid_picture::ScoringConfig::default(),
            simvid_picture::CacheConfig::default(),
            registry.clone(),
        );
        let cancel = Budget::unlimited();
        cancel.cancel();
        let run = run_schedule_resilient_concurrent(
            &w,
            &sys,
            EngineConfig::default(),
            &registry,
            RequestLimits::default(),
            &ExecutorConfig::with_workers(2),
            Some(&cancel),
            |_| {},
        );
        assert_eq!(run.reports.len(), 6);
        assert_eq!(
            run.count(RequestOutcome::Degraded),
            6,
            "a cancelled schedule budget must degrade every request"
        );
        for report in &run.reports {
            assert!(report.reason.is_some());
            assert!(
                !report.upper_bounds.is_empty(),
                "cancelled requests still carry sound upper bounds"
            );
        }
    }

    #[test]
    fn queue_priority_lanes_and_try_push() {
        let registry = Registry::new();
        let q = BoundedQueue::new(2, &registry);
        assert_eq!(q.try_push(0, Priority::Normal), TryPush::Admitted);
        assert_eq!(q.try_push(1, Priority::High), TryPush::Admitted);
        assert_eq!(q.try_push(2, Priority::Normal), TryPush::Full);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1), "high lane drains first");
        assert_eq!(q.pop(), Some(0));
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_push(3, Priority::Normal), TryPush::Closed);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("serve.queue.full_waits"),
            Some(0),
            "try_push never blocks, so it never counts a full wait"
        );
    }

    #[test]
    fn saturated_queue_counts_full_waits() {
        let registry = Registry::new();
        let q = BoundedQueue::new(1, &registry);
        let waits = registry.counter("serve.queue.full_waits");
        assert!(q.push(0), "first push fits without waiting");
        assert_eq!(waits.get(), 0);
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                assert!(q.push(1), "blocked push completes once a slot frees");
            });
            // Deterministic rendezvous: the counter ticks *before* the
            // producer parks, so spinning on it cannot miss the wait.
            while waits.get() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), Some(1));
        });
        assert_eq!(waits.get(), 1, "exactly one producer waited");
    }

    /// Delegating provider that parks every table call until the run's
    /// first request has been shed — pinning the executor saturated so the
    /// shed path is exercised deterministically.
    struct GateProvider<'a> {
        inner: simvid_picture::PictureSystem<'a>,
        release_when: Arc<simvid_obs::Counter>,
        released: std::sync::atomic::AtomicBool,
    }

    impl GateProvider<'_> {
        fn wait(&self) {
            use std::sync::atomic::Ordering;
            if self.released.load(Ordering::Acquire) {
                return;
            }
            while self.release_when.get() == 0 {
                std::thread::yield_now();
            }
            self.released.store(true, Ordering::Release);
        }
    }

    impl AtomicProvider for GateProvider<'_> {
        fn atomic_table(
            &self,
            unit: &simvid_htl::AtomicUnit,
            ctx: simvid_core::engine::SeqContext,
        ) -> Arc<simvid_core::SimilarityTable> {
            self.wait();
            self.inner.atomic_table(unit, ctx)
        }

        fn atomic_max(&self, unit: &simvid_htl::AtomicUnit) -> f64 {
            self.inner.atomic_max(unit)
        }

        fn value_table(
            &self,
            func: &simvid_htl::AttrFn,
            ctx: simvid_core::engine::SeqContext,
        ) -> simvid_core::ValueTable {
            self.wait();
            self.inner.value_table(func, ctx)
        }
    }

    #[test]
    fn saturation_sheds_instead_of_blocking() {
        let cfg = ServeConfig {
            shots: 8,
            requests: 8,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys = GateProvider {
            inner: simvid_picture::PictureSystem::with_registry(
                &w.tree,
                simvid_picture::ScoringConfig::default(),
                simvid_picture::CacheConfig::default(),
                registry.clone(),
            ),
            release_when: registry.counter("serve.outcome.shed"),
            released: std::sync::atomic::AtomicBool::new(false),
        };
        let run = run_schedule_admission(
            &w,
            &sys,
            EngineConfig::default(),
            &registry,
            RequestLimits::default(),
            &ExecutorConfig {
                workers: 1,
                queue_depth: 1,
            },
            &AdmissionConfig {
                shed_when_full: true,
                brownout: None,
            },
            |_| Priority::Normal,
        );
        assert_eq!(run.reports.len(), 8, "every slot resolves, shed or served");
        let sheds = run.count(RequestOutcome::Shed);
        assert!(sheds >= 1, "a single stalled worker must shed overflow");
        for report in &run.reports {
            if report.outcome == RequestOutcome::Shed {
                assert!(report.ranked.is_empty());
                assert!(report.reason.as_deref().unwrap().contains("overload"));
            } else {
                assert_eq!(report.outcome, RequestOutcome::Ok);
            }
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.outcome.shed"), Some(sheds as u64));
        assert_eq!(snap.counter("serve.requests"), Some(8));
    }

    #[test]
    fn brownout_lowers_k_under_pressure() {
        let cfg = ServeConfig {
            shots: 12,
            requests: 12,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys = simvid_picture::PictureSystem::with_registry(
            &w.tree,
            simvid_picture::ScoringConfig::default(),
            simvid_picture::CacheConfig::default(),
            registry.clone(),
        );
        let run = run_schedule_admission(
            &w,
            &sys,
            EngineConfig::default(),
            &registry,
            RequestLimits::default(),
            &ExecutorConfig::with_workers(2),
            &AdmissionConfig {
                shed_when_full: false,
                // Watermark 0: the backlog is always >= 0, so every
                // request serves browned-out — deterministic whatever the
                // actual queue pressure.
                brownout: Some(BrownoutConfig {
                    watermark: 0,
                    k: 1,
                    fuel: None,
                }),
            },
            |_| Priority::Normal,
        );
        assert_eq!(run.count(RequestOutcome::Ok), 12);
        for report in &run.reports {
            assert!(
                report.ranked.len() <= 1,
                "browned-out requests serve at most k=1"
            );
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.brownout.requests"), Some(12));
    }

    #[test]
    fn admission_without_pressure_matches_the_resilient_path() {
        let cfg = ServeConfig {
            shots: 12,
            requests: 16,
            ..ServeConfig::default()
        };
        let w = build(&cfg);
        let sys =
            simvid_picture::PictureSystem::new(&w.tree, simvid_picture::ScoringConfig::default());
        let engine = Engine::new(&sys, &w.tree);
        let reference = run_schedule_resilient(&w, &engine, RequestLimits::default(), |_| {});
        let registry = Arc::new(simvid_obs::Registry::new());
        let sys2 = simvid_picture::PictureSystem::with_registry(
            &w.tree,
            simvid_picture::ScoringConfig::default(),
            simvid_picture::CacheConfig::default(),
            registry.clone(),
        );
        let run = run_schedule_admission(
            &w,
            &sys2,
            EngineConfig::default(),
            &registry,
            RequestLimits::default(),
            &ExecutorConfig::with_workers(3),
            &AdmissionConfig {
                shed_when_full: false,
                brownout: Some(BrownoutConfig {
                    watermark: usize::MAX,
                    k: 1,
                    fuel: Some(0),
                }),
            },
            |r| {
                if r % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                }
            },
        );
        assert_eq!(
            run.reports, reference.reports,
            "no saturation: admission control must be invisible"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.outcome.shed"), Some(0));
        assert_eq!(snap.counter("serve.brownout.requests"), Some(0));
    }

    #[test]
    fn pool_formulas_are_closed_and_evaluable() {
        for f in query_pool() {
            assert_ne!(
                classify(&f),
                FormulaClass::General,
                "serve pool must stay inside the engine's fragment: {f}"
            );
        }
    }
}
