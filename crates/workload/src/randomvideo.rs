//! Seeded random video hierarchies with meta-data, for end-to-end and
//! differential testing of the retrieval engines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvid_model::{AttrValue, ObjectId, VideoBuilder, VideoTree};

/// Parameters of the random video generator.
#[derive(Debug, Clone)]
pub struct VideoGenConfig {
    /// Children per node, per level below the root: e.g. `[3, 4]` builds
    /// root → 3 scenes → 4 shots each.
    pub branching: Vec<u32>,
    /// Size of the object cast.
    pub object_count: u64,
    /// Object classes to draw from.
    pub classes: Vec<&'static str>,
    /// Unary/binary relationship names to sprinkle.
    pub relationships: Vec<&'static str>,
    /// Per-object attributes (integer-valued) to sprinkle.
    pub attrs: Vec<&'static str>,
    /// Expected objects per leaf segment.
    pub objects_per_leaf: f64,
}

impl Default for VideoGenConfig {
    fn default() -> Self {
        VideoGenConfig {
            branching: vec![4, 5],
            object_count: 8,
            classes: vec!["person", "airplane", "train", "horse"],
            relationships: vec!["holds_gun", "fires_at", "near", "moving"],
            attrs: vec!["height", "speed"],
            objects_per_leaf: 2.0,
        }
    }
}

/// Generates a random video. Deterministic in the seed.
#[must_use]
pub fn generate(cfg: &VideoGenConfig, seed: u64) -> VideoTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = VideoBuilder::new(format!("random-video-{seed}"));
    // Name levels from the bottom of the conventional hierarchy so the
    // deepest level is always a recognisable "shot"/"frame" name.
    let scheme = ["video", "plot", "scene", "shot", "frame"];
    let depth = cfg.branching.len() + 1;
    let mut names: Vec<String> = scheme[scheme.len() - depth.min(scheme.len() - 1)..]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    names.insert(0, "video".to_owned());
    names.truncate(depth);
    b.set_level_names(names);
    b.segment_attr(
        "type",
        AttrValue::from(
            *["western", "news", "documentary"]
                .get(seed as usize % 3)
                .unwrap(),
        ),
    );
    build_level(&mut b, &mut rng, cfg, 0);
    b.finish().expect("generated tree is well formed")
}

fn build_level(b: &mut VideoBuilder, rng: &mut StdRng, cfg: &VideoGenConfig, depth: usize) {
    let Some(&fanout) = cfg.branching.get(depth) else {
        // Leaf: populate meta-data.
        populate_leaf(b, rng, cfg);
        return;
    };
    for i in 0..fanout {
        b.child(format!("d{depth}.{i}"));
        build_level(b, rng, cfg, depth + 1);
        b.up();
    }
}

fn populate_leaf(b: &mut VideoBuilder, rng: &mut StdRng, cfg: &VideoGenConfig) {
    let p_obj = (cfg.objects_per_leaf / cfg.object_count as f64).min(1.0);
    let mut present: Vec<ObjectId> = Vec::new();
    for oid in 1..=cfg.object_count {
        if rng.gen_bool(p_obj) {
            let class = cfg.classes[oid as usize % cfg.classes.len()];
            let name = (oid % 2 == 1).then(|| format!("obj{oid}"));
            let id = b.object(oid, class, name.as_deref());
            present.push(id);
            for attr in &cfg.attrs {
                if rng.gen_bool(0.7) {
                    b.object_attr(id, *attr, AttrValue::Int(rng.gen_range(0..500)));
                }
            }
        }
    }
    for rel in &cfg.relationships {
        if present.is_empty() {
            break;
        }
        if rng.gen_bool(0.3) {
            let a = present[rng.gen_range(0..present.len())];
            if rng.gen_bool(0.5) {
                b.relationship(*rel, [a]);
            } else {
                let c = present[rng.gen_range(0..present.len())];
                b.relationship(*rel, [a, c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = VideoGenConfig::default();
        let a = generate(&cfg, 11);
        let b = generate(&cfg, 11);
        assert_eq!(a.segment_count(), b.segment_count());
        // Same leaf meta everywhere.
        for (x, y) in a.level_sequence(2).iter().zip(b.level_sequence(2)) {
            assert_eq!(a.node(*x).meta, b.node(*y).meta);
        }
    }

    #[test]
    fn respects_branching() {
        let cfg = VideoGenConfig {
            branching: vec![2, 3, 4],
            ..VideoGenConfig::default()
        };
        let t = generate(&cfg, 3);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.level_sequence(1).len(), 2);
        assert_eq!(t.level_sequence(2).len(), 6);
        assert_eq!(t.level_sequence(3).len(), 24);
        assert_eq!(t.level_by_name("shot"), Some(3));
    }

    #[test]
    fn leaves_carry_objects_somewhere() {
        let t = generate(&VideoGenConfig::default(), 5);
        let leaf_depth = t.leaf_level();
        let total_objects: usize = t
            .level_sequence(leaf_depth)
            .iter()
            .map(|&s| t.node(s).meta.objects.len())
            .sum();
        assert!(
            total_objects > 0,
            "random video should not be empty of objects"
        );
    }
}
