//! [`PictureSystem`]: the public facade and [`AtomicProvider`] impl.

use crate::cache::AtomicCache;
use crate::index::LevelIndex;
use crate::query::{AtomicQuery, QueryError};
use crate::score::score_window;
use crate::{CacheConfig, ScoringConfig};
use simvid_core::{
    AtomicProvider, CacheStats, Interval, ProviderError, SeqContext, SimilarityList,
    SimilarityTable, ValueRow, ValueTable,
};
use simvid_htl::{AtomicUnit, AttrFn, Formula, FormulaId};
use simvid_model::{AttrValue, CorpusEpoch, ObjectId, VideoTree};
use simvid_obs::Registry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How a [`PictureSystem`] holds its video: borrowed from a frozen
/// [`simvid_model::VideoStore`] (the classic build-time path) or shared
/// via `Arc` (the live-ingestion path, where snapshots outlive any one
/// borrow of the mutable store).
enum TreeHandle<'a> {
    Borrowed(&'a VideoTree),
    Shared(Arc<VideoTree>),
}

impl TreeHandle<'_> {
    fn tree(&self) -> &VideoTree {
        match self {
            TreeHandle::Borrowed(t) => t,
            TreeHandle::Shared(t) => t,
        }
    }
}

/// The picture retrieval system over one video: index-backed similarity
/// scoring of atomic (non-temporal) queries, with a cross-query LRU cache
/// of compiled queries and scored tables (see [`CacheConfig`]).
///
/// The index and result caches are behind [`Mutex`]es (and hand out
/// [`Arc`]s) so the system is [`Sync`], as the engine's parallel
/// evaluation paths require of every [`AtomicProvider`].
pub struct PictureSystem<'a> {
    tree: TreeHandle<'a>,
    config: ScoringConfig,
    indices: Mutex<HashMap<u8, Arc<LevelIndex>>>,
    cache: AtomicCache,
    registry: Arc<Registry>,
    /// The corpus epoch this system was built against (0 for frozen
    /// stores). Stamped so snapshot layers can assert they never mix
    /// epochs within one query.
    epoch: CorpusEpoch,
    /// The cache generation of the (video, content) pair this system
    /// serves. Live ingestion builds a fresh system — fresh generation,
    /// empty caches — whenever a video's content changes, so stale tables
    /// are unreachable by construction.
    generation: u64,
}

impl<'a> PictureSystem<'a> {
    /// Creates a picture system for a video with the default cache
    /// configuration; indices are built lazily per level and cached.
    #[must_use]
    pub fn new(tree: &'a VideoTree, config: ScoringConfig) -> Self {
        PictureSystem::with_cache(tree, config, CacheConfig::default())
    }

    /// Creates a picture system with an explicit atomic-cache
    /// configuration ([`CacheConfig::disabled`] restores the uncached
    /// behaviour). Metrics go to a private registry; use
    /// [`PictureSystem::with_registry`] to share one.
    #[must_use]
    pub fn with_cache(tree: &'a VideoTree, config: ScoringConfig, cache: CacheConfig) -> Self {
        PictureSystem::with_registry(tree, config, cache, Arc::new(Registry::new()))
    }

    /// Creates a picture system publishing its `cache.*` metrics (lookup
    /// counters, residency gauges, compile/score timing spans) into the
    /// given [`Registry`] — typically the one shared with the engine, so
    /// one snapshot covers the whole stack.
    #[must_use]
    pub fn with_registry(
        tree: &'a VideoTree,
        config: ScoringConfig,
        cache: CacheConfig,
        registry: Arc<Registry>,
    ) -> Self {
        PictureSystem {
            tree: TreeHandle::Borrowed(tree),
            config,
            indices: Mutex::new(HashMap::new()),
            cache: AtomicCache::new(cache, &registry),
            registry,
            epoch: CorpusEpoch(0),
            generation: 0,
        }
    }

    /// Creates a picture system that *shares* its video via [`Arc`]
    /// instead of borrowing it — the live-ingestion path, where an
    /// epoch snapshot must keep the tree alive independently of the
    /// mutable store it came from.
    #[must_use]
    pub fn shared(
        tree: Arc<VideoTree>,
        config: ScoringConfig,
        cache: CacheConfig,
        registry: Arc<Registry>,
    ) -> PictureSystem<'static> {
        PictureSystem {
            tree: TreeHandle::Shared(tree),
            config,
            indices: Mutex::new(HashMap::new()),
            cache: AtomicCache::new(cache, &registry),
            registry,
            epoch: CorpusEpoch(0),
            generation: 0,
        }
    }

    /// Stamps the corpus epoch and cache generation this system was built
    /// against (both default to 0, the frozen-store convention).
    #[must_use]
    pub fn with_provenance(mut self, epoch: CorpusEpoch, generation: u64) -> Self {
        self.epoch = epoch;
        self.generation = generation;
        self
    }

    /// The corpus epoch this system was built against.
    #[must_use]
    pub fn corpus_epoch(&self) -> CorpusEpoch {
        self.epoch
    }

    /// The cache generation of this system's (video, content) pair.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The metrics registry this system records into.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The video this system serves.
    #[must_use]
    pub fn tree(&self) -> &VideoTree {
        self.tree.tree()
    }

    /// Number of scored tables currently resident in the atomic-result
    /// cache — the "warm cache" the invalidation counters account for.
    #[must_use]
    pub fn resident_tables(&self) -> usize {
        self.cache.resident_tables()
    }

    /// The atomic-cache configuration in effect.
    #[must_use]
    pub fn cache_config(&self) -> CacheConfig {
        self.cache.config()
    }

    /// Hit/miss/eviction counters of the atomic-result cache, cumulative
    /// over this system's lifetime.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The compiled form of a pure formula, answered from the compiled
    /// cache when a structurally equal formula was compiled before. Errors
    /// are cached alongside successes.
    fn compiled(&self, f: &Formula) -> Arc<Result<AtomicQuery, QueryError>> {
        self.cache
            .compiled_with(FormulaId::of(f), || AtomicQuery::compile(f, &self.config))
    }

    /// The (cached) index for a level.
    fn index(&self, depth: u8) -> Arc<LevelIndex> {
        self.indices
            .lock()
            .expect("index cache lock")
            .entry(depth)
            .or_insert_with(|| Arc::new(LevelIndex::build(self.tree.tree(), depth)))
            .clone()
    }

    /// Evaluates a pure (non-temporal) formula over the full sequence of
    /// segments at `depth`.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn query(&self, f: &Formula, depth: u8) -> Result<SimilarityTable, QueryError> {
        let compiled = self.compiled(f);
        let q = compiled.as_ref().as_ref().map_err(Clone::clone)?;
        let ix = self.index(depth);
        let n = ix.len;
        Ok(score_window(self.tree.tree(), &ix, depth, 0, n, q))
    }

    /// Evaluates a *closed* pure formula at `depth` and returns its
    /// similarity list over the level's segments.
    ///
    /// # Errors
    ///
    /// See [`QueryError`]; additionally if free variables remain.
    pub fn query_closed(&self, f: &Formula, depth: u8) -> Result<SimilarityList, QueryError> {
        let t = self.query(f, depth)?;
        if !t.obj_cols.is_empty() || !t.attr_cols.is_empty() {
            return Err(QueryError::BadAttrPredicate(
                "closed query expected (free variables remain)".into(),
            ));
        }
        Ok(Arc::try_unwrap(t.into_closed_list()).unwrap_or_else(|shared| (*shared).clone()))
    }
}

impl AtomicProvider for PictureSystem<'_> {
    /// # Panics
    ///
    /// Panics if the unit fails to compile (malformed attribute predicate
    /// or too many variables); validate queries with
    /// [`AtomicQuery::compile`] first when handling untrusted input. The
    /// compile runs (and its error is cached) once per distinct formula —
    /// repeated uses of the same malformed unit re-raise the cached error
    /// without recompiling.
    fn atomic_table(&self, unit: &AtomicUnit, ctx: SeqContext) -> Arc<SimilarityTable> {
        let id = FormulaId::of(&unit.formula);
        let compiled = self
            .cache
            .compiled_with(id, || AtomicQuery::compile(&unit.formula, &self.config));
        let q = compiled
            .as_ref()
            .as_ref()
            .unwrap_or_else(|e| panic!("invalid atomic unit `{}`: {e}", unit.formula));
        // The cache's shared `Arc` goes straight to the engine: hits are a
        // reference-count bump, and the engine clones (shallowly — rows
        // share their lists) only if it needs to mutate.
        self.cache.table_with(id, ctx, || {
            let ix = self.index(ctx.depth);
            score_window(self.tree.tree(), &ix, ctx.depth, ctx.lo, ctx.hi, q)
        })
    }

    /// Fallible twin of [`AtomicProvider::atomic_table`], used by the
    /// engine's resilient serving path: a unit that fails to compile comes
    /// back as [`ProviderError::Permanent`] (retrying cannot fix a
    /// malformed formula) instead of panicking, and the scored table goes
    /// through the cache's fallible `try_table_with` path so an error
    /// never occupies a cache slot.
    fn try_atomic_table(
        &self,
        unit: &AtomicUnit,
        ctx: SeqContext,
    ) -> Result<Arc<SimilarityTable>, ProviderError> {
        let id = FormulaId::of(&unit.formula);
        let compiled = self
            .cache
            .compiled_with(id, || AtomicQuery::compile(&unit.formula, &self.config));
        let q = match compiled.as_ref() {
            Ok(q) => q,
            Err(e) => {
                return Err(ProviderError::Permanent(format!(
                    "invalid atomic unit `{}`: {e}",
                    unit.formula
                )))
            }
        };
        self.cache.try_table_with::<ProviderError>(id, ctx, || {
            let ix = self.index(ctx.depth);
            Ok(score_window(
                self.tree.tree(),
                &ix,
                ctx.depth,
                ctx.lo,
                ctx.hi,
                q,
            ))
        })
    }

    fn atomic_max(&self, unit: &AtomicUnit) -> f64 {
        self.compiled(&unit.formula)
            .as_ref()
            .as_ref()
            .unwrap_or_else(|e| panic!("invalid atomic unit `{}`: {e}", unit.formula))
            .max
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn value_table(&self, func: &AttrFn, ctx: SeqContext) -> ValueTable {
        let tree = self.tree.tree();
        let mut builder = ValueTableBuilder::new(match &func.of {
            Some(v) => vec![v.0.clone()],
            None => Vec::new(),
        });
        for p in ctx.lo..ctx.hi {
            let Some(meta) = tree.meta_at(ctx.depth, p) else {
                continue;
            };
            let local = p - ctx.lo + 1;
            match &func.of {
                None => {
                    if let Some(v) = meta.segment_attr(&func.attr) {
                        builder.add(vec![], v.clone(), local);
                    }
                }
                Some(_) => {
                    for inst in &meta.objects {
                        let value = match func.attr.as_str() {
                            "type" | "class" => tree
                                .object_info(inst.id)
                                .map(|i| AttrValue::from(i.class.clone())),
                            "name" => tree
                                .object_info(inst.id)
                                .and_then(|i| i.name.clone())
                                .map(AttrValue::from),
                            attr => inst.attr(attr).cloned(),
                        };
                        if let Some(v) = value {
                            builder.add(vec![inst.id], v, local);
                        }
                    }
                }
            }
        }
        builder.finish()
    }
}

/// A hashable stand-in for [`AttrValue`] agreeing with
/// [`AttrValue::sem_eq`]: ints and floats compare numerically (so both map
/// through the `f64` bit pattern, with `-0.0` normalised to `0.0`), while
/// strings and booleans hash as themselves. `NaN` has no key — `sem_eq`
/// never equates it with anything, so a `NaN` value always starts its own
/// row, exactly like the linear scan did.
#[derive(PartialEq, Eq, Hash)]
enum ValueKey {
    Num(u64),
    Str(String),
    Bool(bool),
}

impl ValueKey {
    fn of(value: &AttrValue) -> Option<ValueKey> {
        match value {
            AttrValue::Int(_) | AttrValue::Float(_) => {
                let f = value.as_f64().expect("numeric");
                if f.is_nan() {
                    return None;
                }
                let f = if f == 0.0 { 0.0 } else { f }; // -0.0 == 0.0 under sem_eq
                Some(ValueKey::Num(f.to_bits()))
            }
            AttrValue::Str(s) => Some(ValueKey::Str(s.clone())),
            AttrValue::Bool(b) => Some(ValueKey::Bool(*b)),
        }
    }
}

/// Builds a [`ValueTable`] with an `O(1)` per-position row lookup instead
/// of a linear scan over the rows: rows are indexed by `(objs, value)`.
/// Output row order stays first-encounter order, as before.
struct ValueTableBuilder {
    table: ValueTable,
    index: HashMap<(Vec<ObjectId>, ValueKey), usize>,
}

impl ValueTableBuilder {
    fn new(obj_cols: Vec<String>) -> ValueTableBuilder {
        ValueTableBuilder {
            table: ValueTable::new(obj_cols),
            index: HashMap::new(),
        }
    }

    /// Adds position `pos` to the row for `(objs, value)`, extending the
    /// row's last span when adjacent. Positions arrive in ascending order.
    fn add(&mut self, objs: Vec<ObjectId>, value: AttrValue, pos: u32) {
        let row = match ValueKey::of(&value) {
            Some(key) => match self.index.entry((objs.clone(), key)) {
                std::collections::hash_map::Entry::Occupied(e) => Some(*e.get()),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(self.table.rows.len());
                    None
                }
            },
            None => None, // NaN matches no existing row
        };
        match row {
            Some(i) => {
                let spans = &mut self.table.rows[i].spans;
                match spans.last_mut() {
                    Some(span) if span.end + 1 == pos => span.end = pos,
                    Some(span) if span.end >= pos => {}
                    _ => spans.push(Interval::new(pos, pos)),
                }
            }
            None => self.table.rows.push(ValueRow {
                objs,
                value,
                spans: vec![Interval::new(pos, pos)],
            }),
        }
    }

    fn finish(self) -> ValueTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_core::Engine;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    /// Frames with a plane climbing then descending: heights 100, 250, 200.
    fn flight() -> VideoTree {
        let mut b = VideoBuilder::new("flight");
        b.set_level_names(["video", "frame"]);
        for (i, h) in [(0, 100i64), (1, 250), (2, 200)] {
            b.child(format!("frame{i}"));
            let plane = b.object(9, "airplane", None);
            b.object_attr(plane, "height", AttrValue::Int(h));
            b.up();
        }
        b.finish().unwrap()
    }

    #[test]
    fn value_table_groups_constant_runs() {
        let mut b = VideoBuilder::new("t");
        b.set_level_names(["video", "frame"]);
        for h in [5i64, 5, 7, 5] {
            b.child(format!("f{h}"));
            let o = b.object(1, "ball", None);
            b.object_attr(o, "height", AttrValue::Int(h));
            b.up();
        }
        let tree = b.finish().unwrap();
        let sys = PictureSystem::new(&tree, ScoringConfig::default());
        let vt = sys.value_table(
            &AttrFn {
                attr: "height".into(),
                of: Some(simvid_htl::ObjVar("z".into())),
            },
            SeqContext {
                depth: 1,
                lo: 0,
                hi: 4,
            },
        );
        assert_eq!(vt.obj_cols, vec!["z"]);
        assert_eq!(vt.rows.len(), 2);
        let five = vt
            .rows
            .iter()
            .find(|r| r.value.sem_eq(&AttrValue::Int(5)))
            .unwrap();
        assert_eq!(five.spans, vec![Interval::new(1, 2), Interval::new(4, 4)]);
        let seven = vt
            .rows
            .iter()
            .find(|r| r.value.sem_eq(&AttrValue::Int(7)))
            .unwrap();
        assert_eq!(seven.spans, vec![Interval::new(3, 3)]);
    }

    #[test]
    fn formula_c_end_to_end() {
        // Paper formula (C): a plane appears, later the same plane is
        // higher.
        let tree = flight();
        let sys = PictureSystem::new(&tree, ScoringConfig::default());
        let engine = Engine::new(&sys, &tree);
        let f = parse(
            "exists z . present(z) and type(z) = \"airplane\" and \
             [h := height(z)] eventually (present(z) and height(z) > h)",
        )
        .unwrap();
        let out = engine.eval_closed_at_level(&f, 1).unwrap();
        // Frame 1 (h=100): later 250 > 100 — full match (max similarity).
        // Frame 2 (h=250): nothing higher follows — partial only.
        // Frame 3 (h=200): last frame — partial only.
        let max = out.max();
        assert!(out.value_at(1) >= max - 1e-9, "frame 1 is an exact match");
        assert!(out.value_at(2) < max);
        assert!(out.value_at(3) < max);
        assert!(out.value_at(2) > 0.0, "partial match still scores");
    }

    #[test]
    fn try_atomic_table_reports_compile_errors_as_permanent() {
        let tree = flight();
        let sys = PictureSystem::new(&tree, ScoringConfig::default());
        // A temporal formula is not a valid atomic unit (`NotPure`); the
        // infallible path panics on it, the fallible one must not.
        let f = parse("eventually present(z)").unwrap();
        let unit = AtomicUnit {
            formula: f,
            free_objs: vec![simvid_htl::ObjVar("z".into())],
            free_attrs: Vec::new(),
        };
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 3,
        };
        match sys.try_atomic_table(&unit, ctx) {
            Err(ProviderError::Permanent(msg)) => {
                assert!(msg.contains("invalid atomic unit"), "got: {msg}");
            }
            other => panic!("expected Permanent compile error, got {other:?}"),
        }
        // A valid unit still scores through the same fallible path.
        let ok = AtomicUnit {
            formula: parse("exists z . present(z)").unwrap(),
            free_objs: Vec::new(),
            free_attrs: Vec::new(),
        };
        let table = sys.try_atomic_table(&ok, ctx).unwrap();
        assert!(table.max > 0.0);
    }

    #[test]
    fn query_closed_rejects_free_variables() {
        let tree = flight();
        let sys = PictureSystem::new(&tree, ScoringConfig::default());
        let f = parse("present(z)").unwrap();
        assert!(sys.query_closed(&f, 1).is_err());
        let closed = parse("exists z . present(z)").unwrap();
        assert_eq!(
            sys.query_closed(&closed, 1).unwrap().to_tuples(),
            vec![(1, 3, 1.0)]
        );
    }

    #[test]
    fn weighted_scoring_reproduces_chosen_values() {
        // Weights engineered as for the Casablanca Man-Woman predicate.
        let cfg = ScoringConfig::default()
            .with_weight("person", 0.5)
            .with_weight("sex", 0.26)
            .with_weight("near", 3.665);
        let mut b = VideoBuilder::new("t");
        b.set_level_names(["video", "shot"]);
        b.child("s");
        let m = b.object(1, "person", None);
        b.object_attr(m, "sex", AttrValue::from("male"));
        let w = b.object(2, "person", None);
        b.object_attr(w, "sex", AttrValue::from("female"));
        b.relationship("near", [m, w]);
        b.up();
        let tree = b.finish().unwrap();
        let sys = PictureSystem::new(&tree, cfg);
        let f = parse(
            "exists x . exists y . person(x) and person(y) and \
             sex(x) = \"male\" and sex(y) = \"female\" and near(x, y)",
        )
        .unwrap();
        let l = sys.query_closed(&f, 1).unwrap();
        // 0.5 + 0.5 + 0.26 + 0.26 + 3.665 = 5.185... wait: sex weights are
        // both 0.26; total = 0.5*2 + 0.26*2 + 3.665.
        let expect = 0.5 * 2.0 + 0.26 * 2.0 + 3.665;
        assert!((l.value_at(1) - expect).abs() < 1e-9);
        assert!((l.max() - expect).abs() < 1e-9);
    }
}
