//! Weighted partial-match scoring over candidate segments and bindings.

use crate::index::LevelIndex;
use crate::query::{AtomicQuery, ConjunctKind};
use simvid_core::{AttrRange, Row, SimilarityList, SimilarityTable};
use simvid_htl::{eval_expr, Atom, Env, ExactEvaluator, Expr, Formula};
use simvid_model::{AttrValue, ObjectId, VideoTree};

/// Accumulator rows while scoring: one per `(free binding, attribute
/// ranges)` evaluation, collecting `(local position, actual similarity)`
/// pairs in ascending position order.
type BindingAcc = Vec<(Vec<ObjectId>, Vec<AttrRange>, Vec<(u32, f64)>)>;

/// Candidate positions for one conjunct, or `None` for "any segment".
fn conjunct_candidates(ix: &LevelIndex, f: &Formula) -> Option<Vec<u32>> {
    match f {
        Formula::Atom(Atom::Bool(false)) => Some(Vec::new()),
        Formula::Atom(Atom::Bool(true)) | Formula::Not(_) => None,
        Formula::Atom(Atom::Present(_)) => {
            let mut out: Vec<u32> = ix.presence.values().flatten().copied().collect();
            out.sort_unstable();
            out.dedup();
            Some(out)
        }
        Formula::Atom(Atom::Rel { name, args }) => {
            let mut out = ix.rel_by_name.get(name).cloned().unwrap_or_default();
            if args.len() == 1 {
                out.extend(ix.class_positions(name));
                out.sort_unstable();
                out.dedup();
            }
            Some(out)
        }
        Formula::Atom(Atom::Cmp { op, lhs, rhs }) => {
            // Index through whichever side applies an attribute function.
            let fn_side = match (lhs, rhs) {
                (Expr::Fn(af), other) | (other, Expr::Fn(af)) => Some((af, other)),
                _ => None,
            };
            let (af, other) = fn_side?;
            match (&af.of, af.attr.as_str()) {
                (Some(_), "type" | "class") => match (op, other) {
                    (simvid_htl::CmpOp::Eq, Expr::Const(AttrValue::Str(s))) => {
                        Some(ix.class_positions(s))
                    }
                    _ => all_presence(ix),
                },
                (Some(_), "name") => match (op, other) {
                    (simvid_htl::CmpOp::Eq, Expr::Const(AttrValue::Str(s))) => {
                        let mut out: Vec<u32> = ix
                            .name_objects
                            .get(s)
                            .into_iter()
                            .flatten()
                            .filter_map(|oid| ix.presence.get(oid))
                            .flatten()
                            .copied()
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        Some(out)
                    }
                    _ => all_presence(ix),
                },
                (Some(_), attr) => {
                    Some(ix.obj_attr_segments.get(attr).cloned().unwrap_or_default())
                }
                (None, attr) => Some(ix.seg_attr_segments.get(attr).cloned().unwrap_or_default()),
            }
        }
        // Nested structure (existentials etc.): no index pruning.
        _ => None,
    }
}

fn all_presence(ix: &LevelIndex) -> Option<Vec<u32>> {
    let mut out: Vec<u32> = ix.presence.values().flatten().copied().collect();
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Computes the candidate positions of a whole query within `[lo, hi)`.
fn candidates(ix: &LevelIndex, query: &AtomicQuery, lo: u32, hi: u32) -> Vec<u32> {
    let mut acc: Vec<u32> = Vec::new();
    for c in &query.conjuncts {
        match conjunct_candidates(ix, &c.formula) {
            None => return (lo..hi).collect(),
            Some(ps) => acc.extend(ps),
        }
    }
    acc.sort_unstable();
    acc.dedup();
    acc.retain(|&p| p >= lo && p < hi);
    acc
}

/// Scores an atomic query over the window `[lo, hi)` of level `depth`,
/// producing a similarity table with positions local to the window
/// (1-based).
#[must_use]
pub fn score_window(
    tree: &VideoTree,
    ix: &LevelIndex,
    depth: u8,
    lo: u32,
    hi: u32,
    query: &AtomicQuery,
) -> SimilarityTable {
    let evaluator = ExactEvaluator::new(tree);
    let vars = query.binding_vars();
    let n_free = query.free_objs.len();
    let n_attrs = query.free_attrs.len();
    // Accumulated rows: (free binding, ranges, per-position values).
    let mut acc: BindingAcc = Vec::new();

    for p in candidates(ix, query, lo, hi) {
        let meta = tree.meta_at(depth, p).expect("candidate within level");
        let objs: Vec<ObjectId> = meta.object_ids().collect();
        if !vars.is_empty() && objs.is_empty() {
            continue;
        }
        let local = p - lo + 1;
        // Odometer over object assignments to all binding variables.
        let mut counters = vec![0usize; vars.len()];
        loop {
            let mut env = Env::new();
            for (vi, var) in vars.iter().enumerate() {
                env.objs.insert((*var).to_owned(), objs[counters[vi]]);
            }
            score_binding(
                tree, &evaluator, depth, p, local, query, &env, n_free, n_attrs, &mut acc,
            );
            // Advance the odometer.
            let mut vi = 0;
            loop {
                if vi == counters.len() {
                    break;
                }
                counters[vi] += 1;
                if counters[vi] < objs.len() {
                    break;
                }
                counters[vi] = 0;
                vi += 1;
            }
            if vi == counters.len() {
                break;
            }
        }
    }

    let mut out =
        SimilarityTable::new(query.free_objs.clone(), query.free_attrs.clone(), query.max);
    for (objs, ranges, entries) in acc {
        let list = SimilarityList::from_tuples(
            entries.into_iter().map(|(p, v)| (p, p, v)).collect(),
            query.max,
        )
        .expect("entries are per-position and ascending")
        .coalesce();
        out.push_row(Row {
            objs,
            ranges,
            list: std::sync::Arc::new(list),
        });
    }
    out
}

/// Scores one joint binding at one segment and folds the result into `acc`,
/// keeping the max over existential assignments.
#[allow(clippy::too_many_arguments)]
fn score_binding(
    tree: &VideoTree,
    evaluator: &ExactEvaluator<'_>,
    depth: u8,
    pos: u32,
    local: u32,
    query: &AtomicQuery,
    env: &Env,
    n_free: usize,
    n_attrs: usize,
    acc: &mut BindingAcc,
) {
    let meta = tree.meta_at(depth, pos).expect("valid position");
    let mut base = 0.0f64;
    // Outcomes per range conjunct: (attr column, range, weight-if-satisfied).
    let mut range_outcomes: Vec<Vec<(usize, AttrRange, f64)>> = Vec::new();
    for c in &query.conjuncts {
        match &c.kind {
            ConjunctKind::Plain => {
                let mut scratch = env.clone();
                if evaluator.satisfies_at(depth, (pos, pos + 1), pos, &c.formula, &mut scratch) {
                    base += c.weight;
                }
            }
            ConjunctKind::Range { var, op, value } => {
                let col = query
                    .free_attrs
                    .iter()
                    .position(|a| a == var)
                    .expect("range var is a free attr");
                let mut outcomes = Vec::with_capacity(2);
                if let Some(v) = eval_expr(tree, meta, value, env) {
                    if let Some(r) = AttrRange::from_cmp(*op, &v) {
                        outcomes.push((col, r, c.weight));
                    }
                    if let Some(r) = AttrRange::from_cmp_negated(*op, &v) {
                        outcomes.push((col, r, 0.0));
                    }
                }
                if outcomes.is_empty() {
                    // Value undefined: the predicate fails for every y.
                    outcomes.push((col, AttrRange::any(), 0.0));
                }
                range_outcomes.push(outcomes);
            }
        }
    }
    // Product of outcomes across range conjuncts.
    let mut combos: Vec<(Vec<AttrRange>, f64)> = vec![(vec![AttrRange::any(); n_attrs], 0.0)];
    for outcomes in &range_outcomes {
        let mut next = Vec::with_capacity(combos.len() * outcomes.len());
        for (ranges, w) in &combos {
            for (col, r, dw) in outcomes {
                if let Some(merged) = ranges[*col].intersect(r) {
                    let mut ranges = ranges.clone();
                    ranges[*col] = merged;
                    next.push((ranges, w + dw));
                }
            }
        }
        combos = next;
    }
    let free_binding: Vec<ObjectId> = query
        .free_objs
        .iter()
        .map(|v| env.objs[v])
        .take(n_free)
        .collect();
    for (ranges, extra) in combos {
        let act = base + extra;
        if act <= 0.0 {
            continue;
        }
        match acc
            .iter_mut()
            .find(|(o, r, _)| *o == free_binding && *r == ranges)
        {
            Some((_, _, entries)) => match entries.last_mut() {
                Some((p, v)) if *p == local => *v = v.max(act),
                _ => entries.push((local, act)),
            },
            None => acc.push((free_binding.clone(), ranges, vec![(local, act)])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoringConfig;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    fn compile(src: &str, cfg: &ScoringConfig) -> AtomicQuery {
        AtomicQuery::compile(&parse(src).unwrap(), cfg).unwrap()
    }

    /// Three shots: (1) two men, (2) man + woman near each other, (3) train.
    fn bar_scene() -> VideoTree {
        let mut b = VideoBuilder::new("t");
        b.set_level_names(["video", "shot"]);
        b.child("two-men");
        let m1 = b.object(1, "person", Some("Rick"));
        b.object_attr(m1, "sex", AttrValue::from("male"));
        let m2 = b.object(2, "person", Some("Sam"));
        b.object_attr(m2, "sex", AttrValue::from("male"));
        b.up();
        b.child("couple");
        let m = b.object(1, "person", Some("Rick"));
        b.object_attr(m, "sex", AttrValue::from("male"));
        let w = b.object(3, "person", Some("Ilsa"));
        b.object_attr(w, "sex", AttrValue::from("female"));
        b.relationship("near", [m, w]);
        b.up();
        b.child("train");
        b.object(4, "train", None);
        b.up();
        b.finish().unwrap()
    }

    #[test]
    fn partial_matches_scored_below_full_matches() {
        let tree = bar_scene();
        let ix = LevelIndex::build(&tree, 1);
        let cfg = ScoringConfig::default();
        let q = compile(
            "exists x . exists y . person(x) and person(y) and \
             sex(x) = \"male\" and sex(y) = \"female\" and near(x, y)",
            &cfg,
        );
        let t = score_window(&tree, &ix, 1, 0, 3, &q);
        assert_eq!(t.rows.len(), 1, "closed query yields one row");
        let list = &t.rows[0].list;
        // Shot 1 (two men): person+person+male = 3 of 5.
        // Shot 2 (couple with near): all 5.
        assert_eq!(list.to_tuples(), vec![(1, 1, 3.0), (2, 2, 5.0)]);
        assert_eq!(t.max, 5.0);
    }

    #[test]
    fn free_variables_produce_binding_rows() {
        let tree = bar_scene();
        let ix = LevelIndex::build(&tree, 1);
        let q = compile(
            "person(x) and sex(x) = \"female\"",
            &ScoringConfig::default(),
        );
        let t = score_window(&tree, &ix, 1, 0, 3, &q);
        // Bindings: o1 (person, male) scores 1 in shots 1-2; o2 scores 1 in
        // shot 1; o3 (female) scores 2 in shot 2; o4 (train) scores 0.
        let find = |oid: u64| {
            t.rows
                .iter()
                .find(|r| r.objs == vec![ObjectId(oid)])
                .map(|r| r.list.to_tuples())
        };
        assert_eq!(find(1), Some(vec![(1, 2, 1.0)]));
        assert_eq!(find(2), Some(vec![(1, 1, 1.0)]));
        assert_eq!(find(3), Some(vec![(2, 2, 2.0)]));
        assert_eq!(find(4), None);
    }

    #[test]
    fn windows_renumber_locally() {
        let tree = bar_scene();
        let ix = LevelIndex::build(&tree, 1);
        let q = compile("exists t . type(t) = \"train\"", &ScoringConfig::default());
        let full = score_window(&tree, &ix, 1, 0, 3, &q);
        assert_eq!(full.rows[0].list.to_tuples(), vec![(3, 3, 1.0)]);
        let windowed = score_window(&tree, &ix, 1, 2, 3, &q);
        assert_eq!(windowed.rows[0].list.to_tuples(), vec![(1, 1, 1.0)]);
    }

    #[test]
    fn range_conjuncts_split_rows_by_attribute_range() {
        let mut b = VideoBuilder::new("flight");
        b.set_level_names(["video", "frame"]);
        for h in [100i64, 250] {
            b.child(format!("frame-h{h}"));
            let plane = b.object(9, "airplane", None);
            b.object_attr(plane, "height", AttrValue::Int(h));
            b.up();
        }
        let tree = b.finish().unwrap();
        let ix = LevelIndex::build(&tree, 1);
        // `h` must be freeze-bound to resolve as an attribute variable;
        // extract the unit the way the engine does.
        let f = parse("[h := height(z)] (present(z) and height(z) > h)").unwrap();
        let unit = simvid_htl::atomic_units(&f).remove(0);
        let q = AtomicQuery::compile(&unit.formula, &ScoringConfig::default()).unwrap();
        let t = score_window(&tree, &ix, 1, 0, 2, &q);
        // For z = plane: frame 1 (height 100) is fully satisfied when
        // h <= 99 (act 2) and partially otherwise (h >= 100, act 1 for the
        // present(z) conjunct); frame 2 splits at 249/250. For any concrete
        // h exactly one row covers each frame: e.g. h = 150 reads frame 1
        // from the [100, ∞) row (act 1) and frame 2 from the (-∞, 249] row
        // (act 2).
        assert_eq!(t.attr_cols, vec!["h"]);
        #[allow(clippy::type_complexity)]
        let mut acts: Vec<(Option<i64>, Option<i64>, Vec<(u32, u32, f64)>)> = t
            .rows
            .iter()
            .map(|r| (r.ranges[0].lo, r.ranges[0].hi, r.list.to_tuples()))
            .collect();
        acts.sort_by_key(|(lo, hi, _)| (*lo, *hi));
        assert_eq!(
            acts,
            vec![
                (None, Some(99), vec![(1, 1, 2.0)]),
                (None, Some(249), vec![(2, 2, 2.0)]),
                (Some(100), None, vec![(1, 1, 1.0)]),
                (Some(250), None, vec![(2, 2, 1.0)]),
            ]
        );
        // Cross-check the per-evaluation read-out for h = 150.
        let h150 = simvid_model::AttrValue::Int(150);
        let covering: Vec<_> = t
            .rows
            .iter()
            .filter(|r| r.ranges[0].contains(&h150))
            .collect();
        assert_eq!(covering.len(), 2);
    }

    #[test]
    fn empty_segments_are_skipped_for_object_queries() {
        let mut b = VideoBuilder::new("t");
        b.leaf("empty1");
        b.leaf("empty2");
        let tree = b.finish().unwrap();
        let ix = LevelIndex::build(&tree, 1);
        let q = compile("present(x)", &ScoringConfig::default());
        let t = score_window(&tree, &ix, 1, 0, 2, &q);
        assert!(t.rows.is_empty());
    }

    #[test]
    fn segment_attribute_queries_work_without_objects() {
        let mut b = VideoBuilder::new("t");
        b.child("s0");
        b.segment_attr("type", AttrValue::from("western"));
        b.up();
        b.leaf("s1");
        let tree = b.finish().unwrap();
        let ix = LevelIndex::build(&tree, 1);
        let q = compile("type = \"western\"", &ScoringConfig::default());
        let t = score_window(&tree, &ix, 1, 0, 2, &q);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0].list.to_tuples(), vec![(1, 1, 1.0)]);
    }
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::ScoringConfig;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    /// Conjuncts sharing an existential variable must be satisfied by a
    /// *single* joint witness, not independently.
    #[test]
    fn shared_existential_variable_needs_a_joint_witness() {
        let mut b = VideoBuilder::new("witness");
        b.set_level_names(["video", "shot"]);
        // Shot 1: one object is armed, a DIFFERENT object is mounted.
        b.child("split");
        let a = b.object(1, "person", None);
        let c = b.object(2, "person", None);
        b.relationship("armed", [a]);
        b.relationship("mounted", [c]);
        b.up();
        // Shot 2: one object is both.
        b.child("joint");
        let d = b.object(3, "person", None);
        b.relationship("armed", [d]);
        b.relationship("mounted", [d]);
        b.up();
        let tree = b.finish().unwrap();
        let ix = LevelIndex::build(&tree, 1);
        let q = AtomicQuery::compile(
            &parse("exists x . armed(x) and mounted(x)").unwrap(),
            &ScoringConfig::default(),
        )
        .unwrap();
        let t = score_window(&tree, &ix, 1, 0, 2, &q);
        let list = t.into_closed_list();
        // Shot 1: best single witness satisfies one conjunct -> act 1.
        assert_eq!(list.value_at(1), 1.0);
        // Shot 2: the joint witness satisfies both -> act 2 (exact).
        assert_eq!(list.value_at(2), 2.0);
    }

    /// Distinct existential variables may pick distinct witnesses.
    #[test]
    fn distinct_variables_may_split_witnesses() {
        let mut b = VideoBuilder::new("split-ok");
        b.set_level_names(["video", "shot"]);
        b.child("split");
        let a = b.object(1, "person", None);
        let c = b.object(2, "person", None);
        b.relationship("armed", [a]);
        b.relationship("mounted", [c]);
        b.up();
        let tree = b.finish().unwrap();
        let ix = LevelIndex::build(&tree, 1);
        let q = AtomicQuery::compile(
            &parse("exists x . exists y . armed(x) and mounted(y)").unwrap(),
            &ScoringConfig::default(),
        )
        .unwrap();
        let t = score_window(&tree, &ix, 1, 0, 1, &q);
        assert_eq!(
            t.into_closed_list().value_at(1),
            2.0,
            "independent witnesses allowed"
        );
    }
}
