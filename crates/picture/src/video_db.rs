//! Multi-video retrieval: one query across a whole video database.
//!
//! §3.1: "For the present, we assume that we only have a single video;
//! multiple videos can be handled by using two numbers one of which gives
//! the video id and the other gives the id of the video segment within the
//! video." This module provides that layer: each video is evaluated
//! independently (indices and similarity lists are per video) and the
//! results are merged into one global top-*k* ranking.

use crate::{PictureSystem, ScoringConfig};
use simvid_core::{rank_entries, Engine, EngineConfig, EngineError, Sim};
use simvid_htl::{classify, normalize_for_engine, Formula, FormulaClass};
use simvid_model::{SegmentId, VideoId, VideoStore};

/// One retrieved segment of one video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The video.
    pub video: VideoId,
    /// The segment within the video.
    pub segment: SegmentId,
    /// 1-based position within the queried level sequence.
    pub pos: u32,
    /// The similarity value.
    pub sim: Sim,
}

/// Which level of each video a query runs on.
#[derive(Debug, Clone)]
pub enum QueryLevel {
    /// A named level ("shot", "frame", …); videos lacking the name are
    /// skipped.
    Named(String),
    /// A 0-based depth; videos shallower than this are skipped.
    Depth(u8),
    /// The deepest level of each video.
    Leaves,
}

/// A video database: a store plus shared scoring and engine configuration.
pub struct VideoDatabase<'a> {
    store: &'a VideoStore,
    scoring: ScoringConfig,
    engine_cfg: EngineConfig,
}

impl<'a> VideoDatabase<'a> {
    /// Wraps a store with default configurations.
    #[must_use]
    pub fn new(store: &'a VideoStore) -> Self {
        VideoDatabase {
            store,
            scoring: ScoringConfig::default(),
            engine_cfg: EngineConfig::default(),
        }
    }

    /// Sets the scoring weights; builder style.
    #[must_use]
    pub fn with_scoring(mut self, scoring: ScoringConfig) -> Self {
        self.scoring = scoring;
        self
    }

    /// Sets the engine configuration; builder style.
    #[must_use]
    pub fn with_engine_config(mut self, cfg: EngineConfig) -> Self {
        self.engine_cfg = cfg;
        self
    }

    /// Evaluates a closed extended-conjunctive query on every video at the
    /// requested level and returns the global top-`k` segments, ranked by
    /// actual similarity (ties: video id, then temporal order).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnsupportedFormula`] for general-class or open
    /// formulas; [`EngineError::BadLevel`] if a level modality inside the
    /// query misresolves.
    pub fn retrieve(
        &self,
        query: &Formula,
        level: &QueryLevel,
        k: usize,
    ) -> Result<Vec<Hit>, EngineError> {
        // Users often write quantifiers inline; hoist them to prefix form
        // when that (semantics-preservingly) brings the query into an
        // engine-supported class.
        let normalized;
        let query = if classify(query) == FormulaClass::General {
            let (hoisted, _, after) = normalize_for_engine(query);
            if after == FormulaClass::General {
                return Err(EngineError::UnsupportedFormula(
                    "multi-video retrieval requires extended conjunctive formulas                      (even after quantifier hoisting)"
                        .into(),
                ));
            }
            normalized = hoisted;
            &normalized
        } else {
            query
        };
        let mut hits: Vec<Hit> = Vec::new();
        for (vid, tree) in self.store.iter() {
            let depth = match level {
                QueryLevel::Named(name) => match tree.level_by_name(name) {
                    Some(d) => d,
                    None => continue,
                },
                QueryLevel::Depth(d) => {
                    if *d >= tree.depth() {
                        continue;
                    }
                    *d
                }
                QueryLevel::Leaves => tree.leaf_level(),
            };
            let system = PictureSystem::new(tree, self.scoring.clone());
            let engine = Engine::with_config(&system, tree, self.engine_cfg);
            let list = engine.eval_closed_at_level(query, depth)?;
            let seq = tree.level_sequence(depth);
            for (iv, sim) in rank_entries(&list) {
                for pos in iv.beg..=iv.end {
                    hits.push(Hit {
                        video: vid,
                        segment: seq[pos as usize - 1],
                        pos,
                        sim,
                    });
                }
            }
        }
        hits.sort_by(|a, b| {
            b.sim
                .act
                .partial_cmp(&a.sim.act)
                .expect("similarities are finite")
                .then(a.video.cmp(&b.video))
                .then(a.pos.cmp(&b.pos))
        });
        hits.truncate(k);
        Ok(hits)
    }

    /// [`VideoDatabase::retrieve`] with per-video evaluation fanned out
    /// over scoped threads — videos are independent (indices, similarity
    /// lists and engines are all per video), so the paper's multi-video
    /// scheme parallelises trivially. Results are identical to the
    /// sequential path.
    ///
    /// # Errors
    ///
    /// As [`VideoDatabase::retrieve`]; the first per-video error wins.
    pub fn retrieve_parallel(
        &self,
        query: &Formula,
        level: &QueryLevel,
        k: usize,
    ) -> Result<Vec<Hit>, EngineError> {
        let normalized;
        let query = if classify(query) == FormulaClass::General {
            let (hoisted, _, after) = normalize_for_engine(query);
            if after == FormulaClass::General {
                return Err(EngineError::UnsupportedFormula(
                    "multi-video retrieval requires extended conjunctive formulas \
                     (even after quantifier hoisting)"
                        .into(),
                ));
            }
            normalized = hoisted;
            &normalized
        } else {
            query
        };
        let results: Vec<Result<Vec<Hit>, EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .store
                .iter()
                .map(|(vid, tree)| {
                    let scoring = self.scoring.clone();
                    let engine_cfg = self.engine_cfg;
                    scope.spawn(move || -> Result<Vec<Hit>, EngineError> {
                        let depth = match level {
                            QueryLevel::Named(name) => match tree.level_by_name(name) {
                                Some(d) => d,
                                None => return Ok(Vec::new()),
                            },
                            QueryLevel::Depth(d) => {
                                if *d >= tree.depth() {
                                    return Ok(Vec::new());
                                }
                                *d
                            }
                            QueryLevel::Leaves => tree.leaf_level(),
                        };
                        let system = PictureSystem::new(tree, scoring);
                        let engine = Engine::with_config(&system, tree, engine_cfg);
                        let list = engine.eval_closed_at_level(query, depth)?;
                        let seq = tree.level_sequence(depth);
                        let mut out = Vec::new();
                        for (iv, sim) in rank_entries(&list) {
                            for pos in iv.beg..=iv.end {
                                out.push(Hit {
                                    video: vid,
                                    segment: seq[pos as usize - 1],
                                    pos,
                                    sim,
                                });
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        });
        let mut hits = Vec::new();
        for r in results {
            hits.extend(r?);
        }
        hits.sort_by(|a, b| {
            b.sim
                .act
                .partial_cmp(&a.sim.act)
                .expect("similarities are finite")
                .then(a.video.cmp(&b.video))
                .then(a.pos.cmp(&b.pos))
        });
        hits.truncate(k);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    fn video_with_shots(title: &str, gun_shots: &[bool]) -> simvid_model::VideoTree {
        let mut b = VideoBuilder::new(title);
        b.set_level_names(["video", "shot"]);
        for (i, &has) in gun_shots.iter().enumerate() {
            b.child(format!("shot{i}"));
            if has {
                let o = b.object(1, "person", None);
                b.relationship("holds_gun", [o]);
            } else {
                b.object(2, "horse", None);
            }
            b.up();
        }
        b.finish().unwrap()
    }

    #[test]
    fn retrieval_merges_and_ranks_across_videos() {
        let mut store = VideoStore::new();
        let v0 = store.add(video_with_shots("a", &[false, true, false]));
        let v1 = store.add(video_with_shots("b", &[true, true]));
        let db = VideoDatabase::new(&store);
        let q = parse("exists x . person(x) and holds_gun(x)").unwrap();
        let hits = db
            .retrieve(&q, &QueryLevel::Named("shot".into()), 10)
            .unwrap();
        // Three exact matches; ties break by video id then position.
        assert_eq!(hits.len(), 3);
        assert_eq!((hits[0].video, hits[0].pos), (v0, 2));
        assert_eq!((hits[1].video, hits[1].pos), (v1, 1));
        assert_eq!((hits[2].video, hits[2].pos), (v1, 2));
        assert!(hits.iter().all(|h| h.sim.is_exact()));
        // Segment ids resolve into the right trees.
        let tree = store.video(v0);
        assert_eq!(tree.node(hits[0].segment).label, "shot1");
    }

    #[test]
    fn k_truncates_globally() {
        let mut store = VideoStore::new();
        store.add(video_with_shots("a", &[true, true, true]));
        store.add(video_with_shots("b", &[true]));
        let db = VideoDatabase::new(&store);
        let q = parse("exists x . holds_gun(x)").unwrap();
        let hits = db.retrieve(&q, &QueryLevel::Leaves, 2).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn videos_without_the_level_are_skipped() {
        let mut store = VideoStore::new();
        store.add(video_with_shots("flat", &[true]));
        // A deep video with different level names.
        let mut b = VideoBuilder::new("deep");
        b.set_level_names(["video", "scene", "frame"]);
        b.child("scene");
        b.child("frame");
        let o = b.object(1, "person", None);
        b.relationship("holds_gun", [o]);
        b.up();
        b.up();
        let deep = store.add(b.finish().unwrap());
        let db = VideoDatabase::new(&store);
        let q = parse("exists x . holds_gun(x)").unwrap();
        let hits = db
            .retrieve(&q, &QueryLevel::Named("frame".into()), 10)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].video, deep);
        // Depth(2) only exists in the deep video.
        let hits = db.retrieve(&q, &QueryLevel::Depth(2), 10).unwrap();
        assert_eq!(hits.len(), 1);
        // Leaves hits both.
        let hits = db.retrieve(&q, &QueryLevel::Leaves, 10).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn general_queries_rejected() {
        let mut store = VideoStore::new();
        store.add(video_with_shots("a", &[true]));
        let db = VideoDatabase::new(&store);
        let q = parse("not eventually (exists x . holds_gun(x))").unwrap();
        assert!(db.retrieve(&q, &QueryLevel::Leaves, 5).is_err());
    }

    #[test]
    fn inline_quantifiers_are_hoisted_automatically() {
        let mut store = VideoStore::new();
        store.add(video_with_shots("a", &[false, true]));
        let db = VideoDatabase::new(&store);
        // Written naively with a non-prefix temporal-scope quantifier:
        // General as parsed, type (2) after hoisting.
        let q = parse("true and (exists x . eventually holds_gun(x))").unwrap();
        assert_eq!(simvid_htl::classify(&q), simvid_htl::FormulaClass::General);
        let hits = db.retrieve(&q, &QueryLevel::Leaves, 5).unwrap();
        assert_eq!(hits.len(), 2, "both shots can reach the gun shot");
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    #[test]
    fn parallel_retrieval_equals_sequential() {
        let mut store = VideoStore::new();
        for v in 0..6u64 {
            let mut b = VideoBuilder::new(format!("v{v}"));
            b.set_level_names(["video", "shot"]);
            for i in 0..8 {
                b.child(format!("shot{i}"));
                if (i + v) % 3 == 0 {
                    let o = b.object(1, "person", None);
                    b.relationship("holds_gun", [o]);
                }
                if (i + v) % 4 == 1 {
                    b.object(2, "horse", None);
                }
                b.up();
            }
            store.add(b.finish().unwrap());
        }
        let db = VideoDatabase::new(&store);
        let q = parse("(exists x . horse(x)) until (exists y . holds_gun(y))").unwrap();
        let level = QueryLevel::Named("shot".into());
        let seq = db.retrieve(&q, &level, 50).unwrap();
        let par = db.retrieve_parallel(&q, &level, 50).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!((a.video, a.pos), (b.video, b.pos));
            assert!((a.sim.act - b.sim.act).abs() < 1e-12);
        }
    }
}
