//! Compilation of pure (non-temporal) formulas into weighted conjunct sets.

use crate::ScoringConfig;
use simvid_htl::{free_attr_vars, Atom, AttrVar, CmpOp, Expr, Formula, ObjVar};
use std::fmt;

/// Errors raised while compiling an atomic query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The formula contains temporal / level / freeze operators.
    NotPure,
    /// A predicate over an attribute variable is not of the restricted form
    /// `y OP value` the paper admits (§3.3).
    BadAttrPredicate(String),
    /// Too many variables to enumerate bindings for.
    TooManyVariables(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NotPure => {
                write!(
                    f,
                    "atomic queries must be free of temporal and level operators"
                )
            }
            QueryError::BadAttrPredicate(s) => write!(
                f,
                "attribute-variable predicates must have the form `y OP value`: {s}"
            ),
            QueryError::TooManyVariables(n) => {
                write!(
                    f,
                    "atomic query binds {n} object variables; at most 5 are supported"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// How a conjunct is evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum ConjunctKind {
    /// Directly on a segment's meta-data (no free attribute variables).
    Plain,
    /// `var OP value`: constrains a free attribute variable; generates
    /// range columns in the similarity table.
    Range {
        /// The attribute variable (normalised to the left side).
        var: String,
        /// Comparison with the variable on the left.
        op: CmpOp,
        /// The value expression (evaluated per segment and binding).
        value: Expr,
    },
}

/// One weighted conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunct {
    /// The conjunct subformula.
    pub formula: Formula,
    /// Its weight (contribution to max similarity).
    pub weight: f64,
    /// Evaluation strategy.
    pub kind: ConjunctKind,
}

/// A compiled atomic query: weighted conjuncts plus variable structure.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicQuery {
    /// Free object variables (similarity-table columns), sorted.
    pub free_objs: Vec<String>,
    /// Free attribute variables (range columns), sorted.
    pub free_attrs: Vec<String>,
    /// Existentially bound object variables, pulled to a prefix (renamed
    /// apart from the free variables); maximised over jointly.
    pub exist_objs: Vec<String>,
    /// The weighted conjuncts.
    pub conjuncts: Vec<Conjunct>,
    /// Maximum similarity: the sum of all weights.
    pub max: f64,
}

/// Renames free occurrences of object variable `from` to `to`, respecting
/// shadowing binders.
fn rename_obj(f: &Formula, from: &str, to: &str) -> Formula {
    fn ren_expr(e: &Expr, from: &str, to: &str) -> Expr {
        match e {
            Expr::Obj(ObjVar(v)) if v == from => Expr::Obj(ObjVar(to.to_owned())),
            Expr::Fn(af) if af.of.as_ref().is_some_and(|o| o.0 == from) => {
                Expr::Fn(simvid_htl::AttrFn {
                    attr: af.attr.clone(),
                    of: Some(ObjVar(to.to_owned())),
                })
            }
            other => other.clone(),
        }
    }
    match f {
        Formula::Atom(a) => Formula::Atom(match a {
            Atom::Bool(b) => Atom::Bool(*b),
            Atom::Present(ObjVar(v)) if v == from => Atom::Present(ObjVar(to.to_owned())),
            Atom::Present(v) => Atom::Present(v.clone()),
            Atom::Cmp { op, lhs, rhs } => Atom::Cmp {
                op: *op,
                lhs: ren_expr(lhs, from, to),
                rhs: ren_expr(rhs, from, to),
            },
            Atom::Rel { name, args } => Atom::Rel {
                name: name.clone(),
                args: args.iter().map(|a| ren_expr(a, from, to)).collect(),
            },
        }),
        Formula::Not(g) => rename_obj(g, from, to).not(),
        Formula::And(g, h) => rename_obj(g, from, to).and(rename_obj(h, from, to)),
        Formula::Exists(v, g) if v.0 == from => Formula::Exists(v.clone(), g.clone()),
        Formula::Exists(v, g) => Formula::Exists(v.clone(), Box::new(rename_obj(g, from, to))),
        // Pure formulas contain no other operators, but stay total.
        Formula::Next(g) => rename_obj(g, from, to).next(),
        Formula::Eventually(g) => rename_obj(g, from, to).eventually(),
        Formula::Until(g, h) => rename_obj(g, from, to).until(rename_obj(h, from, to)),
        Formula::Freeze { var, func, body } => Formula::Freeze {
            var: var.clone(),
            func: if func.of.as_ref().is_some_and(|o| o.0 == from) {
                simvid_htl::AttrFn {
                    attr: func.attr.clone(),
                    of: Some(ObjVar(to.to_owned())),
                }
            } else {
                func.clone()
            },
            body: Box::new(rename_obj(body, from, to)),
        },
        Formula::AtLevel(spec, g) => {
            Formula::AtLevel(spec.clone(), Box::new(rename_obj(g, from, to)))
        }
    }
}

/// Flattens the ∧/∃ structure of a pure formula into conjuncts, pulling
/// existential binders to a prefix (renaming them apart as needed).
fn flatten(f: &Formula, taken: &mut Vec<String>, exist: &mut Vec<String>, out: &mut Vec<Formula>) {
    match f {
        Formula::And(g, h) => {
            flatten(g, taken, exist, out);
            flatten(h, taken, exist, out);
        }
        Formula::Exists(v, body) => {
            let name = if taken.contains(&v.0) {
                let mut i = 1usize;
                loop {
                    let candidate = format!("{}_{i}", v.0);
                    if !taken.contains(&candidate) {
                        break candidate;
                    }
                    i += 1;
                }
            } else {
                v.0.clone()
            };
            let body = if name == v.0 {
                (**body).clone()
            } else {
                rename_obj(body, &v.0, &name)
            };
            taken.push(name.clone());
            exist.push(name);
            flatten(&body, taken, exist, out);
        }
        other => out.push(other.clone()),
    }
}

/// The weight key of a conjunct (see [`ScoringConfig`]).
fn weight_key(f: &Formula) -> &str {
    match f {
        Formula::Atom(Atom::Present(_)) => "present",
        Formula::Atom(Atom::Rel { name, .. }) => name,
        Formula::Atom(Atom::Cmp { lhs, rhs, .. }) => match (lhs, rhs) {
            (Expr::Fn(af), _) | (_, Expr::Fn(af)) => &af.attr,
            _ => "cmp",
        },
        Formula::Atom(Atom::Bool(_)) => "bool",
        Formula::Not(inner) => weight_key(inner),
        _ => "complex",
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

impl AtomicQuery {
    /// Compiles a pure formula into an atomic query under the given
    /// scoring configuration.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn compile(f: &Formula, config: &ScoringConfig) -> Result<AtomicQuery, QueryError> {
        if !simvid_htl::is_pure(f) {
            return Err(QueryError::NotPure);
        }
        let free_objs: Vec<String> = simvid_htl::free_obj_vars(f)
            .into_iter()
            .map(|v| v.0)
            .collect();
        let free_attrs: Vec<String> = simvid_htl::free_attr_vars(f)
            .into_iter()
            .map(|v| v.0)
            .collect();
        let mut taken = free_objs.clone();
        let mut exist_objs = Vec::new();
        let mut parts = Vec::new();
        flatten(f, &mut taken, &mut exist_objs, &mut parts);
        if free_objs.len() + exist_objs.len() > 5 {
            return Err(QueryError::TooManyVariables(
                free_objs.len() + exist_objs.len(),
            ));
        }
        let mut conjuncts = Vec::with_capacity(parts.len());
        let mut max = 0.0;
        for part in parts {
            let weight = config.weight(weight_key(&part));
            let kind = Self::kind_of(&part)?;
            max += weight;
            conjuncts.push(Conjunct {
                formula: part,
                weight,
                kind,
            });
        }
        Ok(AtomicQuery {
            free_objs,
            free_attrs,
            exist_objs,
            conjuncts,
            max,
        })
    }

    fn kind_of(part: &Formula) -> Result<ConjunctKind, QueryError> {
        let attrs: Vec<AttrVar> = free_attr_vars(part).into_iter().collect();
        if attrs.is_empty() {
            return Ok(ConjunctKind::Plain);
        }
        // Attribute-variable conjuncts must be the restricted comparison.
        let Formula::Atom(Atom::Cmp { op, lhs, rhs }) = part else {
            return Err(QueryError::BadAttrPredicate(part.to_string()));
        };
        match (lhs, rhs) {
            (Expr::Attr(AttrVar(v)), value) if free_attr_vars_of_expr(value).is_empty() => {
                Ok(ConjunctKind::Range {
                    var: v.clone(),
                    op: *op,
                    value: value.clone(),
                })
            }
            (value, Expr::Attr(AttrVar(v))) if free_attr_vars_of_expr(value).is_empty() => {
                Ok(ConjunctKind::Range {
                    var: v.clone(),
                    op: flip(*op),
                    value: value.clone(),
                })
            }
            _ => Err(QueryError::BadAttrPredicate(part.to_string())),
        }
    }

    /// All object variables a binding must cover: free then existential.
    #[must_use]
    pub fn binding_vars(&self) -> Vec<&str> {
        self.free_objs
            .iter()
            .chain(self.exist_objs.iter())
            .map(String::as_str)
            .collect()
    }
}

fn free_attr_vars_of_expr(e: &Expr) -> Vec<&str> {
    match e {
        Expr::Attr(AttrVar(v)) => vec![v],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::parse;

    fn compile(src: &str) -> AtomicQuery {
        AtomicQuery::compile(&parse(src).unwrap(), &ScoringConfig::default()).unwrap()
    }

    #[test]
    fn flattens_conjunction_and_prefixes_exists() {
        let q = compile("exists x . present(x) and person(x) and near(x, y)");
        assert_eq!(q.free_objs, vec!["y"]);
        assert_eq!(q.exist_objs, vec!["x"]);
        assert_eq!(q.conjuncts.len(), 3);
        assert_eq!(q.max, 3.0);
    }

    #[test]
    fn renames_colliding_binders() {
        // The inner `exists x` collides with the free `x`.
        let q = compile("present(x) and (exists x . person(x))");
        assert_eq!(q.free_objs, vec!["x"]);
        assert_eq!(q.exist_objs, vec!["x_1"]);
        assert_eq!(q.conjuncts[1].formula.to_string(), "person(x_1)");
    }

    /// Extracts the single atomic unit of a formula — the way range
    /// conjuncts really arise (`h` must be freeze-bound to be an attribute
    /// variable).
    fn compile_unit(src: &str, cfg: &ScoringConfig) -> AtomicQuery {
        let f = parse(src).unwrap();
        let unit = simvid_htl::atomic_units(&f).remove(0);
        AtomicQuery::compile(&unit.formula, cfg).unwrap()
    }

    #[test]
    fn range_conjuncts_are_detected_and_oriented() {
        let q = compile_unit(
            "[h := height(z)] (present(z) and height(z) > h)",
            &ScoringConfig::default(),
        );
        assert_eq!(q.free_attrs, vec!["h"]);
        match &q.conjuncts[1].kind {
            ConjunctKind::Range { var, op, .. } => {
                // height(z) > h  ==>  h < height(z)
                assert_eq!(var, "h");
                assert_eq!(*op, CmpOp::Lt);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn attr_var_on_left_keeps_orientation() {
        let q = compile_unit("[h := height(w)] h >= height(z)", &ScoringConfig::default());
        match &q.conjuncts[0].kind {
            ConjunctKind::Range { var, op, .. } => {
                assert_eq!(var, "h");
                assert_eq!(*op, CmpOp::Ge);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn weights_follow_config_keys() {
        let cfg = ScoringConfig::default()
            .with_weight("person", 2.0)
            .with_weight("present", 0.25)
            .with_weight("height", 4.0);
        let f = parse("present(x) and person(x) and height(x) > 3").unwrap();
        let q = AtomicQuery::compile(&f, &cfg).unwrap();
        let weights: Vec<f64> = q.conjuncts.iter().map(|c| c.weight).collect();
        assert_eq!(weights, vec![0.25, 2.0, 4.0]);
        assert_eq!(q.max, 6.25);
    }

    #[test]
    fn temporal_formulas_rejected() {
        let f = parse("eventually p()").unwrap();
        assert_eq!(
            AtomicQuery::compile(&f, &ScoringConfig::default()),
            Err(QueryError::NotPure)
        );
    }

    #[test]
    fn malformed_attr_predicate_rejected() {
        // Two attribute variables in one comparison.
        let f = parse("[a := height(z)] true").unwrap();
        // Construct h0 = h1 style manually via parse inside two freezes is
        // awkward; instead compare attr var to attr var via the parser:
        let bad = parse("present(z)")
            .unwrap()
            .and(simvid_htl::Formula::Atom(Atom::Cmp {
                op: CmpOp::Eq,
                lhs: Expr::Attr(AttrVar("a".into())),
                rhs: Expr::Attr(AttrVar("b".into())),
            }));
        assert!(matches!(
            AtomicQuery::compile(&bad, &ScoringConfig::default()),
            Err(QueryError::BadAttrPredicate(_))
        ));
        drop(f);
    }

    #[test]
    fn too_many_variables_rejected() {
        let f = parse("p(a) and p(b) and p(c) and p(d) and p(e) and p(g)").unwrap();
        assert!(matches!(
            AtomicQuery::compile(&f, &ScoringConfig::default()),
            Err(QueryError::TooManyVariables(6))
        ));
    }

    #[test]
    fn negated_conjuncts_are_plain() {
        let q = compile("not person(x)");
        assert_eq!(q.conjuncts[0].kind, ConjunctKind::Plain);
        // Weight key looks through the negation.
        let cfg = ScoringConfig::default().with_weight("person", 7.0);
        let q = AtomicQuery::compile(&parse("not person(x)").unwrap(), &cfg).unwrap();
        assert_eq!(q.conjuncts[0].weight, 7.0);
    }
}
