//! Similarity-based picture retrieval — the substrate the paper's video
//! retrieval system is built on (the systems of Sistla & Yu, VLDB '95, and
//! Aslandogan et al., ICDE '95, reimplemented from their published
//! descriptions).
//!
//! The picture system answers *atomic* (non-temporal) queries on the
//! meta-data of individual video segments, returning **similarity tables**:
//! for each evaluation of the query's free object variables (and each range
//! of its free attribute variables), the list of segments with non-zero
//! similarity.
//!
//! Similarity is a weighted partial match: each conjunct of the query
//! carries a weight (configurable per predicate via [`ScoringConfig`]); a
//! binding's actual similarity at a segment is the sum of the weights of
//! the satisfied conjuncts, and the maximum similarity is the sum of all
//! weights. Existential quantifiers inside the query are maximised over
//! jointly. Candidate segments come from inverted indices over the
//! meta-data (presence, classes, relationships, attributes), so segments
//! that cannot match any conjunct are never touched.
//!
//! [`PictureSystem`] implements [`simvid_core::AtomicProvider`], plugging
//! directly into the video retrieval engine.
//!
//! # Example
//!
//! ```
//! use simvid_model::VideoBuilder;
//! use simvid_picture::{PictureSystem, ScoringConfig};
//! use simvid_htl::parse;
//!
//! let mut b = VideoBuilder::new("demo");
//! b.set_level_names(["video", "shot"]);
//! b.child("shot0");
//! let man = b.object(1, "person", Some("Rick"));
//! let woman = b.object(2, "person", Some("Ilsa"));
//! b.relationship("near", [man, woman]);
//! b.up();
//! b.leaf("shot1");
//! let tree = b.finish().unwrap();
//!
//! let system = PictureSystem::new(&tree, ScoringConfig::default());
//! let f = parse("exists x . exists y . person(x) and person(y) and near(x, y)").unwrap();
//! let table = system.query(&f, 1).unwrap();
//! assert_eq!(table.rows.len(), 1);
//! // Shot 1 matches fully: 3 conjuncts of weight 1.
//! assert_eq!(table.rows[0].list.to_tuples(), vec![(1, 1, 3.0)]);
//! ```

mod cache;
mod config;
mod index;
mod live;
mod provider;
mod query;
mod replica;
mod score;
mod shard;
mod video_db;

pub use cache::CacheConfig;
pub use config::ScoringConfig;
pub use index::LevelIndex;
pub use live::{ApplyError, LiveConfig, LivePin, LiveVideoDb};
pub use provider::PictureSystem;
pub use query::{AtomicQuery, Conjunct, ConjunctKind, QueryError};
pub use replica::{ReplicaId, ReplicaTrace, ReplicatedVideoDb};
pub use shard::{shard_of, ShardId, ShardedAnswer, ShardedDegraded, ShardedTopK, ShardedVideoDb};
pub use video_db::{Hit, QueryLevel, VideoDatabase};
