//! Scoring weights.

use std::collections::HashMap;

/// Weights for the weighted-partial-match similarity of atomic queries.
///
/// Each conjunct of an atomic query contributes a weight to the maximum
/// similarity; satisfied conjuncts contribute theirs to the actual
/// similarity. Weights are looked up by key:
///
/// * relationship / class predicates use the predicate name
///   (`"fires_at"`, `"person"`);
/// * attribute comparisons use the attribute name (`"height"`, `"type"`);
/// * `present(x)` uses the key `"present"`.
///
/// Keys absent from the table use [`ScoringConfig::default_weight`].
#[derive(Debug, Clone)]
pub struct ScoringConfig {
    /// Weight for conjuncts without an explicit entry.
    pub default_weight: f64,
    /// Per-key overrides.
    pub weights: HashMap<String, f64>,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig {
            default_weight: 1.0,
            weights: HashMap::new(),
        }
    }
}

impl ScoringConfig {
    /// Config where every conjunct weighs 1.
    #[must_use]
    pub fn uniform() -> Self {
        ScoringConfig::default()
    }

    /// Sets the weight for a key; builder style.
    #[must_use]
    pub fn with_weight(mut self, key: impl Into<String>, weight: f64) -> Self {
        assert!(weight > 0.0, "weights must be positive");
        self.weights.insert(key.into(), weight);
        self
    }

    /// The weight for a key.
    #[must_use]
    pub fn weight(&self, key: &str) -> f64 {
        self.weights
            .get(key)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weight_applies_to_unknown_keys() {
        let c = ScoringConfig::default();
        assert_eq!(c.weight("anything"), 1.0);
    }

    #[test]
    fn overrides_win() {
        let c = ScoringConfig::default()
            .with_weight("near", 3.665)
            .with_weight("present", 0.5);
        assert_eq!(c.weight("near"), 3.665);
        assert_eq!(c.weight("present"), 0.5);
        assert_eq!(c.weight("person"), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = ScoringConfig::default().with_weight("x", 0.0);
    }
}
