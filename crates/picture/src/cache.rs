//! The cross-query atomic-result cache.
//!
//! The ROADMAP's serving workload asks the same handful of popular queries
//! over and over; the dominant cost is recompiling and rescoring their
//! atomic units against the level index. This module keeps a bounded,
//! thread-safe LRU cache of both artifacts:
//!
//! * **scored tables**, keyed by the atomic unit's interned
//!   [`FormulaId`] plus the exact [`SeqContext`] it was scored on — the
//!   same keying discipline as the engine's per-evaluation memo, which
//!   stays intra-query; this cache is the cross-query layer above it;
//! * **compiled queries** (including compile *errors*, so a malformed unit
//!   is diagnosed once, not re-parsed on every call), keyed by the
//!   [`FormulaId`] alone — compilation is context-free.
//!
//! Keying by interned id instead of the printed formula means a lookup
//! costs a structural hash of the (tiny) formula on first intern and a
//! `Copy` of a `u64` afterwards — no `String` allocation per call.
//!
//! Results are handed out as [`Arc`]s: hits never copy table rows, and the
//! cache stays sound because scored tables are immutable. Correctness does
//! not depend on the cache at all — eviction (or a capacity of zero) only
//! costs recomputation, which is what the eviction test in the serve suite
//! pins down.

use crate::query::{AtomicQuery, QueryError};
use simvid_core::{CacheStats, SeqContext, SimilarityTable};
use simvid_htl::FormulaId;
use simvid_obs::{Counter, Gauge, Registry, RegistrySubscriber, Tracer};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// Configuration of the atomic-result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of scored atomic tables kept. `0` disables caching
    /// entirely (every request recompiles and rescores — the pre-cache
    /// behaviour, useful as a baseline).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 1024 }
    }
}

impl CacheConfig {
    /// A cache bounded to `capacity` scored tables.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        CacheConfig { capacity }
    }

    /// A disabled cache (capacity zero).
    #[must_use]
    pub fn disabled() -> CacheConfig {
        CacheConfig { capacity: 0 }
    }

    /// Whether the cache stores anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }
}

/// A small LRU map: recency is tracked by stamping entries and lazily
/// discarding stale queue slots, so touches are O(1) amortised without an
/// intrusive list (the workspace vendors no LRU crate).
struct Lru<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    queue: VecDeque<(u64, K)>,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            capacity,
            map: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
        }
    }

    fn touch(&mut self, key: &K) -> u64 {
        self.tick += 1;
        self.queue.push_back((self.tick, key.clone()));
        // Stale stamps pile up one per touch; compact before the queue
        // outgrows the live set by more than a constant factor.
        if self.queue.len() > 2 * self.map.len().max(self.capacity) + 16 {
            let map = &self.map;
            self.queue
                .retain(|(stamp, k)| map.get(k).is_some_and(|(_, live)| live == stamp));
        }
        self.tick
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&mut self, key: &K) -> Option<V> {
        if !self.map.contains_key(key) {
            return None;
        }
        let stamp = self.touch(key);
        let slot = self.map.get_mut(key).expect("checked above");
        slot.1 = stamp;
        Some(slot.0.clone())
    }

    /// Inserts a value, returning the values displaced by the insert: the
    /// old value when the key was already present, plus any entries
    /// evicted to stay within capacity. Returning the values themselves
    /// (not a count) lets the caller release whatever it accounts per
    /// entry — resident bytes, in the table cache's case.
    fn insert(&mut self, key: K, value: V) -> Displaced<V> {
        let mut out = Displaced {
            replaced: None,
            evicted: Vec::new(),
        };
        if self.capacity == 0 {
            out.replaced = Some(value);
            return out;
        }
        let stamp = self.touch(&key);
        out.replaced = self.map.insert(key, (value, stamp)).map(|(v, _)| v);
        while self.map.len() > self.capacity {
            let Some((stamp, k)) = self.queue.pop_front() else {
                break;
            };
            // A stale stamp means the entry was touched again later; only
            // the slot matching its live stamp evicts it.
            if self.map.get(&k).is_some_and(|(_, live)| *live == stamp) {
                let (v, _) = self.map.remove(&k).expect("checked above");
                out.evicted.push(v);
            }
        }
        out
    }
}

/// What an [`Lru::insert`] pushed out of the map.
struct Displaced<V> {
    /// The previous value under the inserted key, if any (also set when
    /// capacity is zero and the insert itself was refused).
    replaced: Option<V>,
    /// Entries dropped to get back under capacity, oldest first.
    evicted: Vec<V>,
}

/// Key of a scored atomic table: interned formula id + the exact
/// sequence context it was scored on.
type TableKey = (FormulaId, u8, u32, u32);

/// A singleflight slot: the first thread to miss on a key installs one and
/// computes; concurrent requesters for the same key wait on it instead of
/// recomputing. The slot lives in [`AtomicCache::inflight`] only while the
/// computation runs — completed tables are served from the LRU.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    /// The leader is still computing.
    Running,
    /// The leader finished; the table is also in the LRU by now, but
    /// waiters take it straight from the slot (the LRU entry may already
    /// have been evicted under churn).
    Ready(Arc<SimilarityTable>),
    /// The leader's compute failed. The error is handed to every waiter
    /// and **never cached** — type-erased so `try_table_with` stays
    /// generic over its error type.
    Failed(Arc<dyn Any + Send + Sync>),
    /// The leader panicked; waiters elect a new leader and recompute.
    Abandoned,
}

/// The bounded, `Sync` cache shared by every query a
/// [`crate::PictureSystem`] serves.
///
/// All counters live in a [`Registry`] under the `cache.*` namespace:
/// `cache.lookups` counts every table request, split exactly into
/// `cache.hits` + `cache.misses` + `cache.coalesced` (a coalesced lookup
/// waited on a concurrent in-flight computation of the same key — neither
/// a plain hit nor a miss); `cache.evictions` counts capacity evictions,
/// the `cache.tables_resident` and `cache.bytes_resident` gauges track
/// what is currently held, and the `cache.span.compile` /
/// `cache.span.score` / `cache.span.coalesce_wait` histograms time the
/// work a miss triggers and the time waiters spend blocked on it.
///
/// Lock order: `inflight` before `tables` — the singleflight path holds
/// the in-flight map while re-probing the LRU; nothing acquires them the
/// other way round.
pub(crate) struct AtomicCache {
    config: CacheConfig,
    tables: Mutex<Lru<TableKey, Arc<SimilarityTable>>>,
    compiled: Mutex<Lru<FormulaId, Arc<Result<AtomicQuery, QueryError>>>>,
    inflight: Mutex<HashMap<TableKey, Arc<Flight>>>,
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    evictions: Arc<Counter>,
    tables_resident: Arc<Gauge>,
    bytes_resident: Arc<Gauge>,
    tracer: Tracer,
}

impl AtomicCache {
    pub(crate) fn new(config: CacheConfig, registry: &Arc<Registry>) -> AtomicCache {
        AtomicCache {
            config,
            tables: Mutex::new(Lru::new(config.capacity)),
            // Compiled queries are tiny next to scored tables; a handful
            // of slots per table slot keeps popular formulas compiled even
            // when their windows churn the table cache.
            compiled: Mutex::new(Lru::new(config.capacity)),
            inflight: Mutex::new(HashMap::new()),
            lookups: registry.counter("cache.lookups"),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            coalesced: registry.counter("cache.coalesced"),
            evictions: registry.counter("cache.evictions"),
            tables_resident: registry.gauge("cache.tables_resident"),
            bytes_resident: registry.gauge("cache.bytes_resident"),
            tracer: RegistrySubscriber::tracer(registry.clone(), "cache"),
        }
    }

    pub(crate) fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of scored tables currently resident — the warm state the
    /// live-ingestion layer accounts as retained or evicted when a
    /// snapshot swap drops or keeps this cache.
    pub(crate) fn resident_tables(&self) -> usize {
        self.tables.lock().expect("table cache lock").len()
    }

    /// The scored table for `(id, ctx)`, computing and caching it on
    /// a miss. Hit/miss counters cover exactly this path.
    pub(crate) fn table_with(
        &self,
        id: FormulaId,
        ctx: SeqContext,
        compute: impl FnOnce() -> SimilarityTable,
    ) -> Arc<SimilarityTable> {
        let result: Result<_, std::convert::Infallible> =
            self.try_table_with(id, ctx, || Ok(compute()));
        match result {
            Ok(table) => table,
            Err(never) => match never {},
        }
    }

    /// Fallible twin of [`AtomicCache::table_with`] for the resilient
    /// serving path: a compute that fails is **never** cached, so an
    /// injected or transient backend error cannot poison the cross-query
    /// cache — the next request recomputes and stores the real table.
    ///
    /// Concurrent misses on the same key **singleflight**: the first
    /// thread installs an in-flight slot and computes; later arrivals
    /// block on the slot (counted as `coalesced`, neither hit nor miss)
    /// and share the leader's table — or its error, which propagates to
    /// every waiter without occupying a cache slot. A leader that panics
    /// abandons the slot; waiters elect a new leader and recompute, so a
    /// poisoned compute never strands the key. Exactly one of
    /// hits/misses/coalesced is counted per lookup, keeping
    /// `hits + misses + coalesced == lookups` exact even under storms.
    pub(crate) fn try_table_with<E: Clone + Send + Sync + 'static>(
        &self,
        id: FormulaId,
        ctx: SeqContext,
        compute: impl FnOnce() -> Result<SimilarityTable, E>,
    ) -> Result<Arc<SimilarityTable>, E> {
        self.lookups.inc();
        if !self.config.is_enabled() {
            // A disabled cache keeps the pre-cache baseline semantics:
            // every request recomputes — no dedup, no coalescing.
            self.misses.inc();
            let _score = self.tracer.span("score");
            return Ok(Arc::new(compute()?));
        }
        let key: TableKey = (id, ctx.depth, ctx.lo, ctx.hi);
        // Fast path: a completed table in the LRU.
        if let Some(hit) = self.tables.lock().expect("atomic cache lock").get(&key) {
            self.hits.inc();
            return Ok(hit);
        }
        enum Role {
            Done(Arc<SimilarityTable>),
            Leader(Arc<Flight>),
            Waiter(Arc<Flight>),
        }
        let mut compute = Some(compute);
        // A lookup is classified at its first decisive event — plain hit,
        // leader election, or the start of a coalesce wait — and never
        // reclassified, even if an abandoned flight later promotes the
        // waiter to leader.
        let mut counted_coalesced = false;
        loop {
            let role = {
                let mut inflight = self.inflight.lock().expect("inflight map lock");
                // Re-probe the LRU under the in-flight lock: a computation
                // that resolved between the fast path and here must not be
                // repeated.
                if let Some(hit) = self.tables.lock().expect("atomic cache lock").get(&key) {
                    Role::Done(hit)
                } else if let Some(flight) = inflight.get(&key) {
                    Role::Waiter(flight.clone())
                } else {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    inflight.insert(key, flight.clone());
                    Role::Leader(flight)
                }
            };
            match role {
                Role::Done(table) => {
                    if !counted_coalesced {
                        self.hits.inc();
                    }
                    return Ok(table);
                }
                Role::Leader(flight) => {
                    if !counted_coalesced {
                        // Counted before the compute so a panicking
                        // compute still leaves the counter split exact.
                        self.misses.inc();
                    }
                    let compute = compute.take().expect("a lookup leads at most once");
                    return self.lead(key, &flight, compute);
                }
                Role::Waiter(flight) => {
                    if !counted_coalesced {
                        self.coalesced.inc();
                        counted_coalesced = true;
                    }
                    let _wait = self.tracer.span("coalesce_wait");
                    let mut state = flight.state.lock().expect("flight state lock");
                    while matches!(*state, FlightState::Running) {
                        state = flight.done.wait(state).expect("flight state lock");
                    }
                    match &*state {
                        FlightState::Running => unreachable!("wait loop exits only when resolved"),
                        FlightState::Ready(table) => return Ok(table.clone()),
                        FlightState::Failed(err) => {
                            if let Some(err) = err.downcast_ref::<E>() {
                                return Err(err.clone());
                            }
                            // A foreign error type (impossible for a
                            // provider that instantiates one `E` per key,
                            // but not enforced by these types): recompute.
                        }
                        // The leader panicked: loop to elect a new leader.
                        FlightState::Abandoned => {}
                    }
                }
            }
        }
    }

    /// Runs the leader side of a singleflight: computes, publishes the
    /// table into the LRU, and resolves the flight. The flight is resolved
    /// on **every** exit path — a drop guard marks it [`FlightState::Abandoned`]
    /// and wakes waiters if the compute panics.
    fn lead<E: Clone + Send + Sync + 'static>(
        &self,
        key: TableKey,
        flight: &Arc<Flight>,
        compute: impl FnOnce() -> Result<SimilarityTable, E>,
    ) -> Result<Arc<SimilarityTable>, E> {
        struct Resolve<'a> {
            cache: &'a AtomicCache,
            key: TableKey,
            flight: &'a Flight,
            outcome: Option<FlightState>,
        }
        impl Drop for Resolve<'_> {
            fn drop(&mut self) {
                // Runs during unwind when the compute panicked, so recover
                // from (impossible in practice) poisoning instead of
                // risking a double panic.
                self.cache
                    .inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&self.key);
                let mut state = self
                    .flight
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *state = self.outcome.take().unwrap_or(FlightState::Abandoned);
                self.flight.done.notify_all();
            }
        }
        let mut resolve = Resolve {
            cache: self,
            key,
            flight,
            outcome: None,
        };
        let computed = {
            let _score = self.tracer.span("score");
            compute()
        };
        match computed {
            Ok(table) => {
                let table = Arc::new(table);
                self.tables_resident.add(1);
                self.bytes_resident.add(table.approx_bytes() as i64);
                let displaced = self
                    .tables
                    .lock()
                    .expect("atomic cache lock")
                    .insert(key, table.clone());
                self.evictions.add(displaced.evicted.len() as u64);
                for dropped in displaced.evicted.iter().chain(displaced.replaced.as_ref()) {
                    self.tables_resident.sub(1);
                    self.bytes_resident.sub(dropped.approx_bytes() as i64);
                }
                resolve.outcome = Some(FlightState::Ready(table.clone()));
                Ok(table)
            }
            Err(e) => {
                // Never cached: only the flight's current waiters see the
                // error; the next lookup recomputes.
                resolve.outcome = Some(FlightState::Failed(Arc::new(e.clone())));
                Err(e)
            }
        }
    }

    /// The compiled form of the formula interned as `id`, compiling (once)
    /// on a miss. Errors are cached too: a malformed unit panics
    /// identically on every use without being re-compiled each time.
    pub(crate) fn compiled_with(
        &self,
        id: FormulaId,
        compile: impl FnOnce() -> Result<AtomicQuery, QueryError>,
    ) -> Arc<Result<AtomicQuery, QueryError>> {
        if !self.config.is_enabled() {
            let _compile = self.tracer.span("compile");
            return Arc::new(compile());
        }
        if let Some(hit) = self.compiled.lock().expect("compiled cache lock").get(&id) {
            return hit;
        }
        let compiled = {
            let _compile = self.tracer.span("compile");
            Arc::new(compile())
        };
        self.compiled
            .lock()
            .expect("compiled cache lock")
            .insert(id, compiled.clone());
        compiled
    }

    /// The lookup/hit/miss/coalesced/eviction counters, as a thin view
    /// over the registry's `cache.*` counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.get() as usize,
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
            coalesced: self.coalesced.get() as usize,
            evictions: self.evictions.get() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(src: &str) -> FormulaId {
        FormulaId::of(&simvid_htl::parse(src).expect("parse"))
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        assert!(lru.insert(1, 10).evicted.is_empty());
        assert!(lru.insert(2, 20).evicted.is_empty());
        assert_eq!(lru.get(&1), Some(10)); // 1 is now most recent
        assert_eq!(lru.insert(3, 30).evicted, vec![20]); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
    }

    #[test]
    fn lru_reinsert_returns_replaced_value() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        assert_eq!(lru.insert(1, 10).replaced, None);
        let displaced = lru.insert(1, 11);
        assert_eq!(displaced.replaced, Some(10));
        assert!(displaced.evicted.is_empty());
        assert_eq!(lru.get(&1), Some(11));
    }

    #[test]
    fn lru_zero_capacity_stores_nothing() {
        let mut lru: Lru<u32, u32> = Lru::new(0);
        // The refused value comes back as `replaced` so callers can
        // release whatever they accounted for it.
        assert_eq!(lru.insert(1, 10).replaced, Some(10));
        assert_eq!(lru.get(&1), None);
    }

    #[test]
    fn lru_queue_stays_bounded_under_repeated_touches() {
        let mut lru: Lru<u32, u32> = Lru::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        for _ in 0..10_000 {
            for i in 0..4 {
                assert_eq!(lru.get(&i), Some(i));
            }
        }
        assert!(
            lru.queue.len() <= 2 * 4 + 17,
            "stale queue slots must be compacted, got {}",
            lru.queue.len()
        );
    }

    #[test]
    fn cache_counts_hits_misses_and_evictions() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(1), &registry);
        let ctx = |lo| SeqContext {
            depth: 1,
            lo,
            hi: 10,
        };
        let table = || SimilarityTable::new(Vec::new(), Vec::new(), 1.0);
        cache.table_with(fid("p()"), ctx(0), table);
        cache.table_with(fid("p()"), ctx(0), table);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        cache.table_with(fid("p()"), ctx(5), table); // different window: miss + eviction
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().evictions, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.evictions"), Some(1));
    }

    #[test]
    fn resident_gauges_track_insertions_and_evictions() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(2), &registry);
        let ctx = |lo| SeqContext {
            depth: 1,
            lo,
            hi: 10,
        };
        let table = || SimilarityTable::new(Vec::new(), Vec::new(), 1.0);
        let per_table = table().approx_bytes() as i64;
        cache.table_with(fid("p()"), ctx(0), table);
        cache.table_with(fid("p()"), ctx(1), table);
        let tables = registry.gauge("cache.tables_resident");
        let bytes = registry.gauge("cache.bytes_resident");
        assert_eq!(tables.get(), 2);
        assert_eq!(bytes.get(), 2 * per_table);
        // A third window evicts one table: residency must not grow.
        cache.table_with(fid("p()"), ctx(2), table);
        assert_eq!(tables.get(), 2);
        assert_eq!(bytes.get(), 2 * per_table);
    }

    #[test]
    fn miss_compute_is_timed_under_cache_span_score() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let table = || SimilarityTable::new(Vec::new(), Vec::new(), 1.0);
        cache.table_with(fid("p()"), ctx, table); // miss: timed
        cache.table_with(fid("p()"), ctx, table); // hit: not timed
        let snap = registry.snapshot();
        match snap.get("cache.span.score") {
            Some(simvid_obs::MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected score span histogram, got {other:?}"),
        }
    }

    #[test]
    fn failed_compute_is_never_cached() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let err: Result<Arc<SimilarityTable>, String> =
            cache.try_table_with(fid("p()"), ctx, || Err("backend down".to_owned()));
        assert_eq!(err.unwrap_err(), "backend down");
        // The failure must not occupy a slot or any residency accounting.
        assert_eq!(registry.gauge("cache.tables_resident").get(), 0);
        assert_eq!(registry.gauge("cache.bytes_resident").get(), 0);
        // The next call recomputes (a second miss, no hit) and the real
        // table is stored and served from cache afterwards.
        let ok: Result<_, String> = cache.try_table_with(fid("p()"), ctx, || {
            Ok(SimilarityTable::new(Vec::new(), Vec::new(), 1.0))
        });
        assert!(ok.is_ok());
        let hit: Result<_, String> =
            cache.try_table_with(fid("p()"), ctx, || panic!("must be served from cache"));
        assert!(hit.is_ok());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(registry.gauge("cache.tables_resident").get(), 1);
    }

    #[test]
    fn panicking_compute_leaves_cache_usable() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.table_with(fid("p()"), ctx, || panic!("injected compute panic"))
        }));
        assert!(attempt.is_err());
        // The compute runs outside the lock, so the panic poisons nothing:
        // the cache still answers, and no phantom residency was recorded.
        assert_eq!(registry.gauge("cache.tables_resident").get(), 0);
        assert_eq!(registry.gauge("cache.bytes_resident").get(), 0);
        let table = cache.table_with(fid("p()"), ctx, || {
            SimilarityTable::new(Vec::new(), Vec::new(), 1.0)
        });
        assert_eq!(table.max, 1.0);
        assert_eq!(registry.gauge("cache.tables_resident").get(), 1);
    }

    #[test]
    fn hot_key_miss_storm_coalesces_to_one_computation() {
        const WORKERS: usize = 8;
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let id = fid("p()");
        let computations = std::sync::atomic::AtomicUsize::new(0);
        let coalesced = registry.counter("cache.coalesced");
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                scope.spawn(|| {
                    cache.table_with(id, ctx, || {
                        computations.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        // Hold the flight open until every other worker has
                        // registered as a coalesced waiter, so the storm
                        // overlaps deterministically even on one CPU. The
                        // deadline turns a scheduler pathology into an
                        // assertion failure rather than a hang.
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(30);
                        while coalesced.get() < (WORKERS - 1) as u64
                            && std::time::Instant::now() < deadline
                        {
                            std::thread::yield_now();
                        }
                        SimilarityTable::new(Vec::new(), Vec::new(), 1.0)
                    });
                });
            }
        });
        assert_eq!(
            computations.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "singleflight must compute the hot key exactly once"
        );
        let stats = cache.stats();
        assert_eq!(stats.lookups, WORKERS);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(
            stats.coalesced,
            WORKERS - 1,
            "every non-leader must coalesce onto the flight"
        );
        assert_eq!(stats.hits + stats.misses + stats.coalesced, stats.lookups);
    }

    #[test]
    fn failed_compute_propagates_to_every_waiter_uncached() {
        const WORKERS: usize = 4;
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let id = fid("p()");
        let coalesced = registry.counter("cache.coalesced");
        let mut outcomes: Vec<Result<(), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    scope.spawn(|| {
                        cache
                            .try_table_with(id, ctx, || {
                                let deadline =
                                    std::time::Instant::now() + std::time::Duration::from_secs(30);
                                while coalesced.get() < (WORKERS - 1) as u64
                                    && std::time::Instant::now() < deadline
                                {
                                    std::thread::yield_now();
                                }
                                Err("backend down".to_owned())
                            })
                            .map(|_| ())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        outcomes.sort();
        assert_eq!(
            outcomes,
            vec![Err("backend down".to_owned()); WORKERS],
            "the leader's error must reach every coalesced waiter"
        );
        // Never cached: no residency, and the next lookup recomputes.
        assert_eq!(registry.gauge("cache.tables_resident").get(), 0);
        let ok: Result<_, String> = cache.try_table_with(id, ctx, || {
            Ok(SimilarityTable::new(Vec::new(), Vec::new(), 1.0))
        });
        assert!(ok.is_ok());
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.coalesced, WORKERS - 1);
        assert_eq!(stats.hits + stats.misses + stats.coalesced, stats.lookups);
    }

    #[test]
    fn abandoned_flight_elects_new_leader() {
        const WAITERS: usize = 3;
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::with_capacity(4), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let id = fid("p()");
        let coalesced = registry.counter("cache.coalesced");
        let tables: Vec<Arc<SimilarityTable>> = std::thread::scope(|scope| {
            // The panicking leader holds the flight until all waiters have
            // coalesced, then unwinds; one waiter must take over and
            // compute the real table for the rest.
            scope.spawn(|| {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.table_with(id, ctx, || {
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(30);
                        while coalesced.get() < WAITERS as u64
                            && std::time::Instant::now() < deadline
                        {
                            std::thread::yield_now();
                        }
                        panic!("injected leader panic")
                    })
                }));
            });
            let handles: Vec<_> = (0..WAITERS)
                .map(|_| {
                    scope.spawn(|| {
                        cache.table_with(id, ctx, || {
                            SimilarityTable::new(Vec::new(), Vec::new(), 1.0)
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(tables.len(), WAITERS);
        for t in &tables {
            assert_eq!(t.max, 1.0);
        }
        let stats = cache.stats();
        // One increment per lookup even across the abandon/re-elect path.
        assert_eq!(stats.lookups, 1 + WAITERS);
        assert_eq!(stats.hits + stats.misses + stats.coalesced, stats.lookups);
        assert_eq!(registry.gauge("cache.tables_resident").get(), 1);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let registry = Arc::new(Registry::new());
        let cache = AtomicCache::new(CacheConfig::disabled(), &registry);
        let ctx = SeqContext {
            depth: 1,
            lo: 0,
            hi: 10,
        };
        let calls = std::sync::atomic::AtomicUsize::new(0);
        for _ in 0..3 {
            cache.table_with(fid("p()"), ctx, || {
                calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                SimilarityTable::new(Vec::new(), Vec::new(), 1.0)
            });
        }
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(registry.gauge("cache.bytes_resident").get(), 0);
    }
}
