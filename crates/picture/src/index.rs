//! Inverted indices over one level's meta-data.

use simvid_model::{ObjectId, VideoTree};
use std::collections::HashMap;

/// Inverted indices over the segments of one hierarchy level, used to find
/// candidate segments for an atomic query without scanning everything.
/// Positions are 0-based within the level sequence.
#[derive(Debug, Default)]
pub struct LevelIndex {
    /// Object id → positions where it appears.
    pub presence: HashMap<ObjectId, Vec<u32>>,
    /// Object class → object ids of that class.
    pub class_objects: HashMap<String, Vec<ObjectId>>,
    /// Object name → object id.
    pub name_objects: HashMap<String, Vec<ObjectId>>,
    /// Relationship name → positions where one is recorded.
    pub rel_by_name: HashMap<String, Vec<u32>>,
    /// Object-attribute name → positions where some object carries it.
    pub obj_attr_segments: HashMap<String, Vec<u32>>,
    /// Segment-attribute name → positions where the segment carries it.
    pub seg_attr_segments: HashMap<String, Vec<u32>>,
    /// Number of segments at this level.
    pub len: u32,
}

fn push_unique(v: &mut Vec<u32>, pos: u32) {
    if v.last() != Some(&pos) {
        v.push(pos);
    }
}

impl LevelIndex {
    /// Builds the indices for the segments at `depth` of `tree`.
    #[must_use]
    pub fn build(tree: &VideoTree, depth: u8) -> LevelIndex {
        let mut ix = LevelIndex {
            len: tree.level_sequence(depth).len() as u32,
            ..LevelIndex::default()
        };
        for (oid, info) in tree.objects() {
            ix.class_objects
                .entry(info.class.clone())
                .or_default()
                .push(oid);
            if let Some(name) = &info.name {
                ix.name_objects.entry(name.clone()).or_default().push(oid);
            }
        }
        for (pos0, &seg) in tree.level_sequence(depth).iter().enumerate() {
            let pos = pos0 as u32;
            let meta = &tree.node(seg).meta;
            for inst in &meta.objects {
                push_unique(ix.presence.entry(inst.id).or_default(), pos);
                for attr in inst.attrs.keys() {
                    push_unique(ix.obj_attr_segments.entry(attr.clone()).or_default(), pos);
                }
            }
            for rel in &meta.relationships {
                push_unique(ix.rel_by_name.entry(rel.name.clone()).or_default(), pos);
            }
            for attr in meta.attrs.keys() {
                push_unique(ix.seg_attr_segments.entry(attr.clone()).or_default(), pos);
            }
        }
        ix
    }

    /// Positions where any object of the given class appears.
    #[must_use]
    pub fn class_positions(&self, class: &str) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .class_objects
            .get(class)
            .into_iter()
            .flatten()
            .filter_map(|oid| self.presence.get(oid))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_model::{AttrValue, VideoBuilder};

    fn sample() -> simvid_model::VideoTree {
        let mut b = VideoBuilder::new("t");
        b.set_level_names(["video", "shot"]);
        b.child("s0");
        let a = b.object(1, "person", Some("Rick"));
        b.object_attr(a, "mood", AttrValue::from("wry"));
        b.up();
        b.child("s1");
        let a2 = b.object(1, "person", Some("Rick"));
        let t = b.object(2, "train", None);
        b.relationship("boards", [a2, t]);
        b.segment_attr("location", AttrValue::from("station"));
        b.up();
        b.leaf("s2");
        b.finish().unwrap()
    }

    #[test]
    fn presence_index_lists_positions() {
        let tree = sample();
        let ix = LevelIndex::build(&tree, 1);
        assert_eq!(ix.presence[&ObjectId(1)], vec![0, 1]);
        assert_eq!(ix.presence[&ObjectId(2)], vec![1]);
        assert_eq!(ix.len, 3);
    }

    #[test]
    fn class_and_name_indices() {
        let tree = sample();
        let ix = LevelIndex::build(&tree, 1);
        assert_eq!(ix.class_objects["person"], vec![ObjectId(1)]);
        assert_eq!(ix.name_objects["Rick"], vec![ObjectId(1)]);
        assert_eq!(ix.class_positions("person"), vec![0, 1]);
        assert_eq!(ix.class_positions("train"), vec![1]);
        assert!(ix.class_positions("dog").is_empty());
    }

    #[test]
    fn relationship_and_attribute_indices() {
        let tree = sample();
        let ix = LevelIndex::build(&tree, 1);
        assert_eq!(ix.rel_by_name["boards"], vec![1]);
        assert_eq!(ix.obj_attr_segments["mood"], vec![0]);
        assert_eq!(ix.seg_attr_segments["location"], vec![1]);
    }

    #[test]
    fn root_level_index() {
        let tree = sample();
        let ix = LevelIndex::build(&tree, 0);
        assert_eq!(ix.len, 1);
        assert!(ix.presence.is_empty());
    }
}
