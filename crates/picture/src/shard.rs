//! Sharded multi-video retrieval: hash partitioning plus scatter-gather
//! top-`k`.
//!
//! The paper's similarity model decomposes per video — indices, similarity
//! lists and engines are all per-video state — which makes the corpus
//! embarrassingly partitionable. [`ShardedVideoDb`] hash-partitions a
//! [`VideoStore`] into `S` shards with a stable [`ShardId`] assignment;
//! each shard evaluates a query on its own videos (through the pruned
//! [`Engine::top_k_closed`] path, with per-video atomic caches and
//! singleflight intact) and emits a ranked [`ShardStream`]; the merge
//! coordinator ([`simvid_core::merge_shard_streams`]) then runs the
//! threshold algorithm across the streams, stopping as soon as the k-th
//! best score dominates every shard's remaining upper bound.
//!
//! Results are **bit-identical** to the unsharded path for every shard
//! count: streams are sorted by the corpus-wide total order
//! ([`simvid_core::global_rank`]), so the merge is exactly the k-prefix of
//! the global sort the flat scan would produce. The
//! [`ShardedVideoDb::top_k_unsharded`] oracle makes that property directly
//! testable (and CI-gateable via `results_digest`).
//!
//! A shard whose provider fails with a *degradable* error (a provider
//! that gave up after retries, a budget violation, a captured panic)
//! degrades the answer instead of sinking it: the merge runs over the
//! surviving shards and the result carries the failed shard ids plus a
//! sound upper bound on anything the failed shards could have contributed
//! (see [`ShardedDegraded`]).

use crate::{CacheConfig, PictureSystem, ScoringConfig};
use simvid_core::{
    merge_shard_streams, AtomicProvider, Budget, Engine, EngineConfig, EngineError, MergeStats,
    ShardHit, ShardStream, TopKAnswer,
};
use simvid_htl::{classify, normalize_for_engine, Formula, FormulaClass};
use simvid_model::{CorpusEpoch, VideoId, VideoStore, VideoTree};
use simvid_obs::Registry;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Stable identifier of one shard of a partitioned video store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The shard a video belongs to, out of `shards` total.
///
/// The assignment is a pure function of the video id (FNV-1a over its
/// little-endian bytes, reduced mod `shards`) — stable across processes,
/// platforms and runs, so a video never migrates unless the shard count
/// itself changes.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(video: VideoId, shards: u32) -> ShardId {
    assert!(shards > 0, "shard count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in video.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ShardId((h % u64::from(shards)) as u32)
}

/// One video of a shard: its tree plus the provider that answers atomic
/// queries on it (persistent, so atomic caches warm up across requests).
struct ShardMember<'a, P> {
    video: VideoId,
    tree: &'a VideoTree,
    provider: P,
}

/// One shard: a stable id and the videos hashed into it.
struct Shard<'a, P> {
    id: ShardId,
    members: Vec<ShardMember<'a, P>>,
}

/// The complete scatter-gather answer: the corpus-wide top-`k` plus the
/// merge accounting (how much shard work the threshold condition saved).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTopK {
    /// The global top-`k`, in [`simvid_core::global_rank`] order —
    /// bit-identical to the unsharded path.
    pub ranked: Vec<ShardHit>,
    /// Coordinator accounting for this request.
    pub merge: MergeStats,
}

/// A sound partial answer over the surviving shards when one or more
/// shards failed with a degradable error.
///
/// Soundness: every listed hit is exact (shards evaluate exactly, only
/// coverage is lost), and any hit a failed shard could have contributed
/// has actual similarity at most [`ShardedDegraded::missing_bound`] — the
/// formula-level maximum similarity, which depends only on the query, not
/// the video.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedDegraded {
    /// The top-`k` over the surviving shards, in global rank order.
    pub ranked: Vec<ShardHit>,
    /// Coordinator accounting over the surviving streams.
    pub merge: MergeStats,
    /// The shards that failed, with the rendered reason.
    pub failed: Vec<(ShardId, String)>,
    /// Sound upper bound on the actual similarity of any hit the failed
    /// shards could have contributed. [`f64::INFINITY`] when no surviving
    /// hit pinned down the formula maximum (trivially sound).
    pub missing_bound: f64,
}

/// The outcome of one scatter-gather top-`k` request.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardedAnswer {
    /// Every shard answered; the ranking is exact and complete.
    Complete(ShardedTopK),
    /// At least one shard failed degradably; the ranking covers the
    /// surviving shards with a sound bound on what is missing.
    Degraded(ShardedDegraded),
}

impl ShardedAnswer {
    /// The ranked hits, complete or partial.
    #[must_use]
    pub fn ranked(&self) -> &[ShardHit] {
        match self {
            ShardedAnswer::Complete(t) => &t.ranked,
            ShardedAnswer::Degraded(d) => &d.ranked,
        }
    }

    /// Whether every shard contributed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, ShardedAnswer::Complete(_))
    }

    /// The coordinator accounting, whichever way the request resolved.
    #[must_use]
    pub fn merge_stats(&self) -> MergeStats {
        match self {
            ShardedAnswer::Complete(t) => t.merge,
            ShardedAnswer::Degraded(d) => d.merge,
        }
    }
}

/// A hash-partitioned video store with scatter-gather top-`k` retrieval.
///
/// Generic over the per-video provider so the serving stack can wrap
/// providers (fault injection, instrumentation) without this crate
/// depending on them — see [`ShardedVideoDb::map_providers`].
pub struct ShardedVideoDb<'a, P: AtomicProvider> {
    shards: Vec<Shard<'a, P>>,
    engine_cfg: EngineConfig,
    registry: Arc<Registry>,
    /// The corpus epoch the partition was built against. A frozen db
    /// serves this one epoch forever; the live layer builds a fresh
    /// snapshot per epoch instead of mutating one in place.
    epoch: CorpusEpoch,
}

impl<'a> ShardedVideoDb<'a, PictureSystem<'a>> {
    /// Partitions `store` into `shards` shards of [`PictureSystem`]s, one
    /// per video, all publishing into `registry`. Per-video atomic caches
    /// (and their singleflight coalescing) persist for the lifetime of
    /// the db, so repeated queries warm up exactly as in the unsharded
    /// serving path.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn partition(
        store: &'a VideoStore,
        shards: u32,
        scoring: &ScoringConfig,
        engine_cfg: EngineConfig,
        cache: CacheConfig,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let mut buckets: Vec<Shard<'a, PictureSystem<'a>>> = (0..shards)
            .map(|i| Shard {
                id: ShardId(i),
                members: Vec::new(),
            })
            .collect();
        let epoch = store.epoch();
        for (video, tree) in store.iter() {
            let shard = shard_of(video, shards);
            buckets[shard.0 as usize].members.push(ShardMember {
                video,
                tree,
                provider: PictureSystem::with_registry(
                    tree,
                    scoring.clone(),
                    cache,
                    Arc::clone(&registry),
                )
                .with_provenance(epoch, 0),
            });
        }
        ShardedVideoDb {
            shards: buckets,
            engine_cfg,
            registry,
            epoch,
        }
    }
}

impl<'a, P: AtomicProvider> ShardedVideoDb<'a, P> {
    /// Rewraps every per-video provider, preserving the partition. This is
    /// how the chaos harness injects faults: wrap each provider in a
    /// fault-injecting decorator, giving the victim shard an always-fail
    /// plan and the survivors a quiet one.
    #[must_use]
    pub fn map_providers<Q, F>(self, mut f: F) -> ShardedVideoDb<'a, Q>
    where
        Q: AtomicProvider,
        F: FnMut(ShardId, VideoId, P) -> Q,
    {
        let shards = self
            .shards
            .into_iter()
            .map(|s| Shard {
                id: s.id,
                members: s
                    .members
                    .into_iter()
                    .map(|m| ShardMember {
                        video: m.video,
                        tree: m.tree,
                        provider: f(s.id, m.video, m.provider),
                    })
                    .collect(),
            })
            .collect();
        ShardedVideoDb {
            shards,
            engine_cfg: self.engine_cfg,
            registry: self.registry,
            epoch: self.epoch,
        }
    }

    /// The corpus epoch this partition was built against.
    #[must_use]
    pub fn epoch(&self) -> CorpusEpoch {
        self.epoch
    }

    /// Visits every per-video provider (chaos harnesses use this to bump
    /// fault epochs between requests).
    pub fn for_each_provider(&self, mut f: impl FnMut(ShardId, VideoId, &P)) {
        for s in &self.shards {
            for m in &s.members {
                f(s.id, m.video, &m.provider);
            }
        }
    }

    /// Number of shards (fixed at partition time).
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard ids, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.shards.iter().map(|s| s.id)
    }

    /// The videos assigned to `shard`, in store order.
    #[must_use]
    pub fn videos_in(&self, shard: ShardId) -> Vec<VideoId> {
        self.shards[shard.0 as usize]
            .members
            .iter()
            .map(|m| m.video)
            .collect()
    }

    /// The metrics registry shared by every shard.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Evaluates `query` on one shard and returns its ranked candidate
    /// stream: each member video's pruned top-`k` (at most `k` hits per
    /// video can reach the global top-`k`), sorted by the corpus-wide
    /// rank order. Evaluation wall time lands in the shard's
    /// `shard.<id>.eval_seconds` histogram.
    ///
    /// # Errors
    ///
    /// Any [`EngineError`] from a member evaluation; degradable errors
    /// mark the whole shard failed in [`ShardedVideoDb::gather`].
    pub fn eval_shard(
        &self,
        shard: ShardId,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardStream, EngineError> {
        let normalized = normalize_query(query)?;
        self.eval_shard_inner(
            &self.shards[shard.0 as usize],
            normalized.as_ref(),
            depth,
            k,
        )
    }

    /// [`ShardedVideoDb::eval_shard`] under a request [`Budget`]: member
    /// evaluations go through [`Engine::top_k_closed_resilient`] sharing
    /// one budget across the whole shard, and a budget violation surfaces
    /// as its typed error instead of a partial stream (a shard stream must
    /// be exact — soundness of the merge depends on it). With
    /// [`Budget::unlimited`] this is bit-identical to
    /// [`ShardedVideoDb::eval_shard`], which is the same path with the
    /// same unlimited budget. The replicated store uses the fuel cap to
    /// implement deterministic hedged reads.
    ///
    /// # Errors
    ///
    /// As [`ShardedVideoDb::eval_shard`], plus the degradable budget
    /// errors ([`EngineError::BudgetExhausted`],
    /// [`EngineError::DeadlineExceeded`], [`EngineError::Cancelled`]).
    pub fn eval_shard_budgeted(
        &self,
        shard: ShardId,
        query: &Formula,
        depth: u8,
        k: usize,
        budget: &Budget,
    ) -> Result<ShardStream, EngineError> {
        let normalized = normalize_query(query)?;
        let query = normalized.as_ref();
        let shard = &self.shards[shard.0 as usize];
        let timer = self
            .registry
            .histogram(&format!("shard.{}.eval_seconds", shard.id.0));
        let t0 = Instant::now();
        let mut hits: Vec<ShardHit> = Vec::new();
        for m in &shard.members {
            if depth >= m.tree.depth() {
                continue;
            }
            let engine = Engine::with_registry(
                &m.provider,
                m.tree,
                self.engine_cfg,
                Arc::clone(&self.registry),
            );
            match engine.top_k_closed_resilient(query, depth, k, budget)? {
                TopKAnswer::Complete(ranked) => {
                    for seg in ranked {
                        hits.push(ShardHit {
                            video: m.video,
                            pos: seg.pos,
                            sim: seg.sim,
                        });
                    }
                }
                TopKAnswer::Degraded(d) => return Err(d.reason),
            }
        }
        timer.record_duration(t0.elapsed());
        Ok(ShardStream::new(shard.id.0, hits))
    }

    fn eval_shard_inner(
        &self,
        shard: &Shard<'a, P>,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardStream, EngineError> {
        let timer = self
            .registry
            .histogram(&format!("shard.{}.eval_seconds", shard.id.0));
        let t0 = Instant::now();
        let mut hits: Vec<ShardHit> = Vec::new();
        for m in &shard.members {
            if depth >= m.tree.depth() {
                continue;
            }
            let engine = Engine::with_registry(
                &m.provider,
                m.tree,
                self.engine_cfg,
                Arc::clone(&self.registry),
            );
            for seg in engine.top_k_closed(query, depth, k)? {
                hits.push(ShardHit {
                    video: m.video,
                    pos: seg.pos,
                    sim: seg.sim,
                });
            }
        }
        timer.record_duration(t0.elapsed());
        Ok(ShardStream::new(shard.id.0, hits))
    }

    /// Merges per-shard evaluation outcomes into a [`ShardedAnswer`],
    /// counting shard outcomes (`shard.outcome.ok` / `shard.outcome.failed`)
    /// and coordinator savings (`shard.candidates_pruned`,
    /// `shard.early_terminated`) into the registry. Shared by the
    /// sequential scatter loop and the concurrent executor fan-out so a
    /// request is accounted identically wherever its shards ran.
    ///
    /// # Errors
    ///
    /// The first non-degradable shard error (a rejected query, a bad
    /// level): degrading cannot help, the request itself is malformed.
    pub fn gather(
        &self,
        per_shard: Vec<(ShardId, Result<ShardStream, EngineError>)>,
        k: usize,
    ) -> Result<ShardedAnswer, EngineError> {
        let ok = self.registry.counter("shard.outcome.ok");
        let failed_ctr = self.registry.counter("shard.outcome.failed");
        let pruned = self.registry.counter("shard.candidates_pruned");
        let early = self.registry.counter("shard.early_terminated");
        let mut streams: Vec<ShardStream> = Vec::with_capacity(per_shard.len());
        let mut failed: Vec<(ShardId, String)> = Vec::new();
        for (id, outcome) in per_shard {
            match outcome {
                Ok(stream) => {
                    ok.inc();
                    streams.push(stream);
                }
                Err(e) if e.is_degradable() => {
                    failed_ctr.inc();
                    failed.push((id, e.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        // The formula-level maximum similarity is video-independent, so
        // any surviving hit's `max` bounds anything a failed shard could
        // have contributed. No surviving hit → no certificate → infinity.
        let missing_bound = streams
            .iter()
            .find_map(|s| s.hits.first().map(|h| h.sim.max))
            .unwrap_or(f64::INFINITY);
        let (ranked, merge) = merge_shard_streams(&streams, k);
        pruned.add(merge.candidates_pruned);
        early.add(merge.early_terminated);
        if failed.is_empty() {
            Ok(ShardedAnswer::Complete(ShardedTopK { ranked, merge }))
        } else {
            Ok(ShardedAnswer::Degraded(ShardedDegraded {
                ranked,
                merge,
                failed,
                missing_bound,
            }))
        }
    }

    /// Scatter-gather top-`k`: evaluates `query` on every shard and
    /// merges the streams with the threshold algorithm. Complete answers
    /// are bit-identical to [`ShardedVideoDb::top_k_unsharded`].
    ///
    /// # Errors
    ///
    /// Non-degradable errors only; shard-level degradable failures
    /// resolve to [`ShardedAnswer::Degraded`] instead.
    pub fn top_k(
        &self,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardedAnswer, EngineError> {
        let normalized = normalize_query(query)?;
        let query = normalized.as_ref();
        let per_shard = self
            .shards
            .iter()
            .map(|s| (s.id, self.eval_shard_inner(s, query, depth, k)))
            .collect();
        self.gather(per_shard, k)
    }

    /// The unsharded oracle: a flat scan over every video (same per-video
    /// pruned evaluation), one global sort, truncate at `k`. This is the
    /// reference the scatter-gather path must reproduce bit-identically.
    ///
    /// # Errors
    ///
    /// Any [`EngineError`] from a member evaluation — the oracle does not
    /// degrade.
    pub fn top_k_unsharded(
        &self,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<Vec<ShardHit>, EngineError> {
        let normalized = normalize_query(query)?;
        let query = normalized.as_ref();
        let mut hits: Vec<ShardHit> = Vec::new();
        for s in &self.shards {
            for m in &s.members {
                if depth >= m.tree.depth() {
                    continue;
                }
                let engine = Engine::with_registry(
                    &m.provider,
                    m.tree,
                    self.engine_cfg,
                    Arc::clone(&self.registry),
                );
                for seg in engine.top_k_closed(query, depth, k)? {
                    hits.push(ShardHit {
                        video: m.video,
                        pos: seg.pos,
                        sim: seg.sim,
                    });
                }
            }
        }
        hits.sort_by(simvid_core::global_rank);
        hits.truncate(k);
        Ok(hits)
    }
}

/// Hoists inline quantifiers exactly as [`crate::VideoDatabase::retrieve`]
/// does, so naively-written queries reach the engine-supported class.
/// Shared with the live-ingestion store so both normalize identically.
pub(crate) fn normalize_query(query: &Formula) -> Result<NormalizedQuery<'_>, EngineError> {
    if classify(query) == FormulaClass::General {
        let (hoisted, _, after) = normalize_for_engine(query);
        if after == FormulaClass::General {
            return Err(EngineError::UnsupportedFormula(
                "sharded retrieval requires extended conjunctive formulas \
                 (even after quantifier hoisting)"
                    .into(),
            ));
        }
        Ok(NormalizedQuery::Owned(hoisted))
    } else {
        Ok(NormalizedQuery::Borrowed(query))
    }
}

pub(crate) enum NormalizedQuery<'q> {
    Borrowed(&'q Formula),
    Owned(Formula),
}

impl NormalizedQuery<'_> {
    pub(crate) fn as_ref(&self) -> &Formula {
        match self {
            NormalizedQuery::Borrowed(f) => f,
            NormalizedQuery::Owned(f) => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    fn video(title: &str, gun_shots: &[bool]) -> VideoTree {
        let mut b = VideoBuilder::new(title);
        b.set_level_names(["video", "shot"]);
        for (i, &has) in gun_shots.iter().enumerate() {
            b.child(format!("shot{i}"));
            if has {
                let o = b.object(1, "person", None);
                b.relationship("holds_gun", [o]);
            } else {
                b.object(2, "horse", None);
            }
            b.up();
        }
        b.finish().unwrap()
    }

    fn store() -> VideoStore {
        let mut store = VideoStore::new();
        store.add(video("a", &[false, true, false, true]));
        store.add(video("b", &[true, true]));
        store.add(video("c", &[false, false, true]));
        store.add(video("d", &[true]));
        store.add(video("e", &[false, true, true]));
        store.add(video("f", &[true, false, true]));
        store
    }

    fn db(store: &VideoStore, shards: u32) -> ShardedVideoDb<'_, PictureSystem<'_>> {
        ShardedVideoDb::partition(
            store,
            shards,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        )
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for shards in 1..=8 {
            for v in 0..64 {
                let s = shard_of(VideoId(v), shards);
                assert!(s.0 < shards);
                assert_eq!(s, shard_of(VideoId(v), shards), "assignment is pure");
            }
        }
        // The hash actually spreads: 64 videos over 4 shards leave no
        // shard empty.
        let mut seen = [false; 4];
        for v in 0..64 {
            seen[shard_of(VideoId(v), 4).0 as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn partition_covers_every_video_exactly_once() {
        let store = store();
        let db = db(&store, 3);
        let mut videos: Vec<VideoId> = db.shard_ids().flat_map(|s| db.videos_in(s)).collect();
        videos.sort();
        let mut want: Vec<VideoId> = store.iter().map(|(v, _)| v).collect();
        want.sort();
        assert_eq!(videos, want);
        for s in db.shard_ids() {
            for v in db.videos_in(s) {
                assert_eq!(shard_of(v, 3), s);
            }
        }
    }

    #[test]
    fn sharded_top_k_matches_unsharded_oracle_for_every_shard_count() {
        let store = store();
        let q = parse("exists x . person(x) and holds_gun(x)").unwrap();
        for shards in 1..=6 {
            let db = db(&store, shards);
            for k in [0, 1, 3, 7, 100] {
                let oracle = db.top_k_unsharded(&q, 1, k).unwrap();
                let answer = db.top_k(&q, 1, k).unwrap();
                assert!(answer.is_complete());
                assert_eq!(answer.ranked(), &oracle[..], "shards={shards} k={k}");
            }
        }
    }

    #[test]
    fn merge_counters_account_for_savings() {
        let store = store();
        let db = db(&store, 4);
        let q = parse("exists x . holds_gun(x)").unwrap();
        let answer = db.top_k(&q, 1, 2).unwrap();
        let stats = answer.merge_stats();
        assert_eq!(stats.consumed, 2);
        assert!(stats.candidates_pruned > 0, "k=2 must leave candidates");
        let snap = db.registry().snapshot();
        assert_eq!(snap.counter("shard.outcome.ok"), Some(4));
        assert_eq!(
            snap.counter("shard.candidates_pruned"),
            Some(stats.candidates_pruned)
        );
    }

    #[test]
    fn general_queries_are_hoisted_or_rejected() {
        let store = store();
        let db = db(&store, 2);
        let hoistable = parse("true and (exists x . eventually holds_gun(x))").unwrap();
        assert!(db.top_k(&hoistable, 1, 5).is_ok());
        let hopeless = parse("not eventually (exists x . holds_gun(x))").unwrap();
        assert!(db.top_k(&hopeless, 1, 5).is_err());
    }
}
