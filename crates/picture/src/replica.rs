//! R-way replicated sharded retrieval: health-tracked failover, circuit
//! breaking, and deterministic hedged reads over [`ShardedVideoDb`].
//!
//! [`ReplicatedVideoDb`] holds `R` independently-built copies of the same
//! partition — each replica its own [`ShardedVideoDb`] with its own
//! per-video providers, so a fault harness can kill one copy of a shard
//! without touching its siblings. A shard read walks the replicas in the
//! pure candidate order of [`simvid_resilience::failover_order`],
//! consulting each candidate's circuit breaker
//! ([`simvid_resilience::ReplicaSetHealth`]) before calling it, failing
//! over on degradable errors, and optionally *hedging*: when a
//! [`simvid_resilience::HedgePolicy`] caps the primary's fuel, a primary
//! that burns the cap is abandoned for the next replica instead of being
//! waited out.
//!
//! Replicas are bit-identical copies, so *which* live replica serves a
//! shard never changes the answer — a chaos run that kills one replica of
//! a shard produces the exact result bytes of the fault-free run, with
//! only the `replica.failover` counter showing the difference. Only when
//! **every** replica of a shard is exhausted does the read give up, with
//! [`EngineError::ReplicasExhausted`] — degradable, so
//! [`ShardedVideoDb::gather`] degrades the corpus answer with the same
//! sound `missing_bound` a single failed unreplicated shard produces.

use crate::shard::{ShardId, ShardedAnswer, ShardedVideoDb};
use crate::{CacheConfig, PictureSystem, ScoringConfig};
use simvid_core::{AtomicProvider, Budget, EngineConfig, EngineError, ShardStream};
use simvid_htl::Formula;
use simvid_model::{VideoId, VideoStore};
use simvid_obs::{Counter, Registry};
use simvid_resilience::{failover_order, Admission, BreakerConfig, HedgePolicy, ReplicaSetHealth};
use std::fmt;
use std::sync::Arc;

/// Stable identifier of one replica of the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The audit trail of one replicated shard read: which replicas were
/// consulted (in candidate order — tried *or* skipped by an open breaker),
/// which one served, and whether the read hedged off a slow primary.
///
/// Under a fault world that is pure per `(shard, replica)` — a replica
/// either always fails or never does, the regime the chaos suites pin —
/// the trace is a pure function of `(epoch, shard)`: the consulted list is
/// the prefix of [`failover_order`] up to the first live replica, whether
/// the dead candidates were tried-and-failed or breaker-denied. That is
/// what makes failover order bit-comparable across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaTrace {
    /// The shard this read targeted.
    pub shard: ShardId,
    /// Candidates consulted, in order.
    pub consulted: Vec<ReplicaId>,
    /// The replica whose stream was returned; `None` when exhausted.
    pub served_by: Option<ReplicaId>,
    /// Whether the primary was abandoned after burning its hedge fuel.
    pub hedged: bool,
}

/// An R-way replicated [`ShardedVideoDb`]: the same partition, `R`
/// independently-faultable copies, scatter-gather reads with failover.
///
/// Counters published into the shared registry:
/// * `replica.attempts` — shard-read attempts actually placed on a replica
/// * `replica.failover` — reads served by a candidate other than the first
/// * `replica.hedges` — primaries abandoned after burning hedge fuel
/// * `replica.exhausted` — shard reads that ran out of replicas
///
/// plus the `replica.breaker.*` / `replica.health.*` metrics of
/// [`ReplicaSetHealth`].
pub struct ReplicatedVideoDb<'a, P: AtomicProvider> {
    replicas: Vec<ShardedVideoDb<'a, P>>,
    health: ReplicaSetHealth,
    breaker_cfg: BreakerConfig,
    hedge: HedgePolicy,
    registry: Arc<Registry>,
    attempts: Arc<Counter>,
    failover: Arc<Counter>,
    hedges: Arc<Counter>,
    exhausted: Arc<Counter>,
}

impl<'a> ReplicatedVideoDb<'a, PictureSystem<'a>> {
    /// Partitions `store` into `shards` shards, `replicas` times over —
    /// each replica an independent [`ShardedVideoDb::partition`] with its
    /// own [`PictureSystem`]s (and atomic caches), all publishing into
    /// `registry`. Breakers start closed with [`BreakerConfig::default`]
    /// and hedging disabled; see [`ReplicatedVideoDb::with_breaker`] and
    /// [`ReplicatedVideoDb::with_hedge`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `replicas` is zero.
    #[must_use]
    pub fn partition(
        store: &'a VideoStore,
        shards: u32,
        replicas: u32,
        scoring: &ScoringConfig,
        engine_cfg: EngineConfig,
        cache: CacheConfig,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(replicas > 0, "replica count must be positive");
        let copies = (0..replicas)
            .map(|_| {
                ShardedVideoDb::partition(
                    store,
                    shards,
                    scoring,
                    engine_cfg,
                    cache,
                    Arc::clone(&registry),
                )
            })
            .collect();
        Self::assemble(
            copies,
            BreakerConfig::default(),
            HedgePolicy::disabled(),
            registry,
        )
    }
}

impl<'a, P: AtomicProvider> ReplicatedVideoDb<'a, P> {
    /// Assembles a replicated store from pre-built replicas of the same
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or the copies disagree on shard
    /// count.
    #[must_use]
    pub fn from_replicas(
        replicas: Vec<ShardedVideoDb<'a, P>>,
        breaker: BreakerConfig,
        hedge: HedgePolicy,
        registry: Arc<Registry>,
    ) -> Self {
        Self::assemble(replicas, breaker, hedge, registry)
    }

    fn assemble(
        replicas: Vec<ShardedVideoDb<'a, P>>,
        breaker: BreakerConfig,
        hedge: HedgePolicy,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(!replicas.is_empty(), "at least one replica");
        let shards = replicas[0].shard_count();
        assert!(
            replicas.iter().all(|r| r.shard_count() == shards),
            "replicas must share the partition"
        );
        let epoch = replicas[0].epoch();
        assert!(
            replicas.iter().all(|r| r.epoch() == epoch),
            "replicas must agree on the corpus epoch (never mix epochs)"
        );
        let health = ReplicaSetHealth::new(shards, replicas.len() as u32, breaker, &registry);
        ReplicatedVideoDb {
            replicas,
            health,
            breaker_cfg: breaker,
            hedge,
            attempts: registry.counter("replica.attempts"),
            failover: registry.counter("replica.failover"),
            hedges: registry.counter("replica.hedges"),
            exhausted: registry.counter("replica.exhausted"),
            registry,
        }
    }

    /// Replaces the breaker tuning, resetting every breaker to closed.
    #[must_use]
    pub fn with_breaker(self, breaker: BreakerConfig) -> Self {
        Self::assemble(self.replicas, breaker, self.hedge, self.registry)
    }

    /// Replaces the hedged-read policy.
    #[must_use]
    pub fn with_hedge(self, hedge: HedgePolicy) -> Self {
        Self::assemble(self.replicas, self.breaker_cfg, hedge, self.registry)
    }

    /// Rewraps every per-video provider of every replica, preserving the
    /// partition and resetting breaker state. The chaos harness gives one
    /// replica of the victim shard an always-fail plan this way, leaving
    /// its siblings quiet.
    #[must_use]
    pub fn map_providers<Q, F>(self, mut f: F) -> ReplicatedVideoDb<'a, Q>
    where
        Q: AtomicProvider,
        F: FnMut(ReplicaId, ShardId, VideoId, P) -> Q,
    {
        let registry = Arc::clone(&self.registry);
        let breaker = self.breaker_cfg;
        let hedge = self.hedge;
        let replicas = self
            .replicas
            .into_iter()
            .enumerate()
            .map(|(ri, db)| {
                let rid = ReplicaId(ri as u32);
                db.map_providers(|sid, vid, p| f(rid, sid, vid, p))
            })
            .collect();
        ReplicatedVideoDb::assemble(replicas, breaker, hedge, registry)
    }

    /// Visits every per-video provider of every replica.
    pub fn for_each_provider(&self, mut f: impl FnMut(ReplicaId, ShardId, VideoId, &P)) {
        for (ri, db) in self.replicas.iter().enumerate() {
            let rid = ReplicaId(ri as u32);
            db.for_each_provider(|sid, vid, p| f(rid, sid, vid, p));
        }
    }

    /// Number of shards per replica.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.replicas[0].shard_count()
    }

    /// The corpus epoch every replica was built against (asserted equal
    /// at assembly).
    #[must_use]
    pub fn epoch(&self) -> simvid_model::CorpusEpoch {
        self.replicas[0].epoch()
    }

    /// Number of replicas of the partition.
    #[must_use]
    pub fn replica_count(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// The shard ids, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> + '_ {
        self.replicas[0].shard_ids()
    }

    /// The videos assigned to `shard` (identical in every replica).
    #[must_use]
    pub fn videos_in(&self, shard: ShardId) -> Vec<VideoId> {
        self.replicas[0].videos_in(shard)
    }

    /// The metrics registry shared by every replica.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared breaker/health grid (read access for tests and gauges).
    #[must_use]
    pub fn health(&self) -> &ReplicaSetHealth {
        &self.health
    }

    /// One replica's sharded store (the unreplicated oracle and the merge
    /// coordinator both live there).
    #[must_use]
    pub fn replica(&self, r: ReplicaId) -> &ShardedVideoDb<'a, P> {
        &self.replicas[r.0 as usize]
    }

    /// Merges per-shard outcomes exactly as [`ShardedVideoDb::gather`]
    /// does — shared so replicated and unreplicated requests account and
    /// degrade identically.
    ///
    /// # Errors
    ///
    /// As [`ShardedVideoDb::gather`].
    pub fn gather(
        &self,
        per_shard: Vec<(ShardId, Result<ShardStream, EngineError>)>,
        k: usize,
    ) -> Result<ShardedAnswer, EngineError> {
        self.replicas[0].gather(per_shard, k)
    }

    /// Evaluates `query` on one shard with replica failover: walks the
    /// candidates of [`failover_order`]`(epoch, shard, R)`, skipping
    /// replicas whose breaker denies admission, failing over on degradable
    /// errors, and hedging off a fuel-capped primary when a
    /// [`HedgePolicy`] is set. Probe admissions run uncapped so the
    /// breaker always learns a definitive outcome.
    ///
    /// Returns the first live replica's stream — bit-identical to any
    /// other replica's, since replicas are copies — plus the
    /// [`ReplicaTrace`] of the walk. When every candidate is exhausted the
    /// result is [`EngineError::ReplicasExhausted`] (degradable); a
    /// non-degradable error aborts immediately, since it is
    /// replica-independent (the request itself is malformed).
    ///
    /// If the capped primary burns its fuel and every other replica fails,
    /// the primary is retried uncapped before giving up — slow is better
    /// than exhausted.
    pub fn eval_shard_replicated(
        &self,
        epoch: u64,
        shard: ShardId,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> (Result<ShardStream, EngineError>, ReplicaTrace) {
        let order = failover_order(epoch, shard.0, self.replica_count());
        let mut trace = ReplicaTrace {
            shard,
            consulted: Vec::with_capacity(order.len()),
            served_by: None,
            hedged: false,
        };
        let mut last_err: Option<EngineError> = None;
        let mut hedged_primary: Option<u32> = None;
        for (idx, &r) in order.iter().enumerate() {
            trace.consulted.push(ReplicaId(r));
            let admission = self.health.admit(shard.0, r);
            if admission == Admission::Deny {
                continue;
            }
            // Only the leading candidate on a plain admission is
            // fuel-capped: probes must reach a definitive outcome, and
            // failover attempts are already the fallback.
            let cap = match (idx, admission, self.hedge.primary_fuel) {
                (0, Admission::Admit, Some(fuel)) => Some(fuel),
                _ => None,
            };
            match self.try_replica(shard, r, query, depth, k, cap) {
                Ok(stream) => {
                    if idx > 0 {
                        self.failover.inc();
                    }
                    trace.served_by = Some(ReplicaId(r));
                    return (Ok(stream), trace);
                }
                Err(EngineError::BudgetExhausted) if cap.is_some() => {
                    // The primary is slow, not broken: hedge to the next
                    // replica without dinging its health.
                    self.hedges.inc();
                    trace.hedged = true;
                    hedged_primary = Some(r);
                }
                Err(e) if e.is_degradable() => {
                    self.health.record(shard.0, r, false);
                    last_err = Some(e);
                }
                Err(e) => return (Err(e), trace),
            }
        }
        if let Some(r) = hedged_primary {
            // Every other replica is down; the slow primary is the best
            // copy left. Retry it uncapped.
            match self.try_replica(shard, r, query, depth, k, None) {
                Ok(stream) => {
                    trace.served_by = Some(ReplicaId(r));
                    return (Ok(stream), trace);
                }
                Err(e) if e.is_degradable() => {
                    self.health.record(shard.0, r, false);
                    last_err = Some(e);
                }
                Err(e) => return (Err(e), trace),
            }
        }
        self.exhausted.inc();
        let why = last_err.map_or_else(
            || "every candidate denied by its circuit breaker".to_owned(),
            |e| e.to_string(),
        );
        (
            Err(EngineError::ReplicasExhausted(format!("{shard}: {why}"))),
            trace,
        )
    }

    /// One admitted attempt on one replica: budgeted when hedging caps the
    /// primary's fuel, unlimited otherwise. Success is recorded into the
    /// health grid here; failures are classified by the caller (a burnt
    /// hedge cap must not count against health).
    fn try_replica(
        &self,
        shard: ShardId,
        r: u32,
        query: &Formula,
        depth: u8,
        k: usize,
        cap: Option<u64>,
    ) -> Result<ShardStream, EngineError> {
        self.attempts.inc();
        let budget = match cap {
            Some(fuel) => Budget::unlimited().with_fuel(fuel),
            None => Budget::unlimited(),
        };
        let out = self.replicas[r as usize].eval_shard_budgeted(shard, query, depth, k, &budget);
        if out.is_ok() {
            self.health.record(shard.0, r, true);
        }
        out
    }

    /// Scatter-gather top-`k` with replica failover on every shard.
    /// Complete answers are bit-identical to [`ShardedVideoDb::top_k`] on
    /// any single replica; a shard whose replicas are all exhausted
    /// degrades the answer exactly as an unreplicated failed shard does.
    ///
    /// # Errors
    ///
    /// Non-degradable errors only, as [`ShardedVideoDb::top_k`].
    pub fn top_k_replicated(
        &self,
        epoch: u64,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<(ShardedAnswer, Vec<ReplicaTrace>), EngineError> {
        let shard_ids: Vec<ShardId> = self.shard_ids().collect();
        let mut per_shard = Vec::with_capacity(shard_ids.len());
        let mut traces = Vec::with_capacity(shard_ids.len());
        for s in shard_ids {
            let (outcome, trace) = self.eval_shard_replicated(epoch, s, query, depth, k);
            per_shard.push((s, outcome));
            traces.push(trace);
        }
        Ok((self.gather(per_shard, k)?, traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simvid_htl::parse;
    use simvid_model::{VideoBuilder, VideoTree};
    use simvid_resilience::{FaultPlan, FaultyProvider, RetryPolicy};

    fn video(title: &str, gun_shots: &[bool]) -> VideoTree {
        let mut b = VideoBuilder::new(title);
        b.set_level_names(["video", "shot"]);
        for (i, &has) in gun_shots.iter().enumerate() {
            b.child(format!("shot{i}"));
            if has {
                let o = b.object(1, "person", None);
                b.relationship("holds_gun", [o]);
            } else {
                b.object(2, "horse", None);
            }
            b.up();
        }
        b.finish().unwrap()
    }

    fn store() -> VideoStore {
        let mut store = VideoStore::new();
        store.add(video("a", &[false, true, false, true]));
        store.add(video("b", &[true, true]));
        store.add(video("c", &[false, false, true]));
        store.add(video("d", &[true]));
        store.add(video("e", &[false, true, true]));
        store.add(video("f", &[true, false, true]));
        store
    }

    fn db(
        store: &VideoStore,
        shards: u32,
        replicas: u32,
    ) -> ReplicatedVideoDb<'_, PictureSystem<'_>> {
        ReplicatedVideoDb::partition(
            store,
            shards,
            replicas,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        )
    }

    fn query() -> Formula {
        parse("exists x . person(x) and holds_gun(x)").unwrap()
    }

    #[test]
    fn fault_free_replicated_matches_single_replica() {
        let store = store();
        let db = db(&store, 3, 2);
        let q = query();
        let single = db.replica(ReplicaId(0)).top_k(&q, 1, 5).unwrap();
        for epoch in 0..8 {
            let (answer, traces) = db.top_k_replicated(epoch, &q, 1, 5).unwrap();
            assert!(answer.is_complete());
            assert_eq!(answer.ranked(), single.ranked());
            assert_eq!(traces.len(), 3);
            for t in &traces {
                assert_eq!(t.consulted.len(), 1, "fault-free reads stop at the primary");
                assert_eq!(t.served_by, Some(t.consulted[0]));
                assert!(!t.hedged);
            }
        }
        let snap = db.registry().snapshot();
        assert_eq!(snap.counter("replica.failover"), Some(0));
        assert_eq!(snap.counter("replica.exhausted"), Some(0));
    }

    #[test]
    fn dead_replica_fails_over_without_degrading() {
        let store = store();
        let registry = Arc::new(Registry::new());
        let plain = ReplicatedVideoDb::partition(
            &store,
            2,
            2,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::clone(&registry),
        );
        let q = query();
        let truth = plain.replica(ReplicaId(0)).top_k(&q, 1, 5).unwrap();
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let db = plain.map_providers(|rid, _sid, _vid, sys| {
            let plan = if rid == ReplicaId(0) {
                FaultPlan {
                    seed: 7,
                    error_rate: 1.0,
                    ..FaultPlan::quiet(7)
                }
            } else {
                FaultPlan::quiet(7)
            };
            FaultyProvider::with_registry(sys, plan, policy, &registry)
        });
        for epoch in 0..16 {
            let (answer, traces) = db.top_k_replicated(epoch, &q, 1, 5).unwrap();
            assert!(answer.is_complete(), "one live replica per shard suffices");
            assert_eq!(answer.ranked(), truth.ranked());
            for t in &traces {
                assert_eq!(
                    t.served_by,
                    Some(ReplicaId(1)),
                    "replica 1 is the live copy"
                );
            }
        }
        let snap = db.registry().snapshot();
        assert!(snap.counter("replica.failover").unwrap() > 0);
        assert_eq!(snap.counter("replica.exhausted"), Some(0));
        assert_eq!(snap.counter("shard.outcome.failed"), Some(0));
    }

    #[test]
    fn whole_shard_kill_degrades_with_a_sound_bound() {
        let store = store();
        let registry = Arc::new(Registry::new());
        let plain = ReplicatedVideoDb::partition(
            &store,
            2,
            2,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::clone(&registry),
        );
        let q = query();
        let victim = plain
            .shard_ids()
            .find(|&s| !plain.videos_in(s).is_empty())
            .unwrap();
        assert!(
            plain
                .shard_ids()
                .any(|s| s != victim && !plain.videos_in(s).is_empty()),
            "a survivor shard must hold videos for the bound to be finite"
        );
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let db = plain.map_providers(|_rid, sid, _vid, sys| {
            let plan = if sid == victim {
                FaultPlan {
                    seed: 7,
                    error_rate: 1.0,
                    ..FaultPlan::quiet(7)
                }
            } else {
                FaultPlan::quiet(7)
            };
            FaultyProvider::with_registry(sys, plan, policy, &registry)
        });
        let (answer, traces) = db.top_k_replicated(0, &q, 1, 5).unwrap();
        match answer {
            ShardedAnswer::Degraded(d) => {
                assert_eq!(d.failed.len(), 1);
                assert_eq!(d.failed[0].0, victim);
                assert!(d.failed[0].1.contains("every replica"), "{}", d.failed[0].1);
                assert!(d.missing_bound.is_finite());
            }
            ShardedAnswer::Complete(_) => panic!("a fully-killed shard must degrade"),
        }
        let victim_trace = traces.iter().find(|t| t.shard == victim).unwrap();
        assert_eq!(victim_trace.served_by, None);
        assert_eq!(victim_trace.consulted.len(), 2, "both replicas consulted");
        let snap = db.registry().snapshot();
        assert!(snap.counter("replica.exhausted").unwrap() > 0);
    }

    #[test]
    fn hedged_primary_fails_over_then_retries_uncapped_as_last_resort() {
        let store = store();
        let db = db(&store, 1, 2).with_hedge(HedgePolicy::with_fuel(0));
        let q = query();
        // Fuel 0 exhausts immediately: the primary always hedges, the
        // secondary serves, answers stay exact.
        let single = db.replica(ReplicaId(0)).top_k(&q, 1, 5).unwrap();
        let (answer, traces) = db.top_k_replicated(0, &q, 1, 5).unwrap();
        assert!(answer.is_complete());
        assert_eq!(answer.ranked(), single.ranked());
        assert!(traces[0].hedged);
        assert_eq!(traces[0].served_by, Some(traces[0].consulted[1]));
        let snap = db.registry().snapshot();
        assert!(snap.counter("replica.hedges").unwrap() > 0);
        assert!(snap.counter("replica.failover").unwrap() > 0);
    }

    #[test]
    fn non_degradable_errors_abort_instead_of_failing_over() {
        let store = store();
        let db = db(&store, 2, 3);
        let hopeless = parse("not eventually (exists x . holds_gun(x))").unwrap();
        assert!(db.top_k_replicated(0, &hopeless, 1, 5).is_err());
    }
}
