//! Live corpus ingestion: epoch-versioned snapshots with incremental
//! invalidation.
//!
//! Every serving layer below this one assumes a frozen
//! [`VideoStore`]. [`LiveVideoDb`] lifts that restriction with
//! **snapshot isolation**: the store absorbs [`CorpusOp`] batches
//! atomically (each successful [`LiveVideoDb::apply`] advances the
//! [`CorpusEpoch`] by one), and every query runs against an immutable
//! [`LivePin`] — an `Arc`'d snapshot of the whole corpus at one epoch.
//! A query pinned before a batch sees the corpus entirely-before it;
//! one pinned after sees it entirely-after; scatter-gather can never mix
//! epochs because a snapshot *is* one epoch.
//!
//! Invalidation is **incremental at per-video granularity**. Each live
//! video is a [`LiveMember`]: its tree (`Arc`-shared into snapshots) plus
//! `R` replica [`PictureSystem`]s whose atomic caches, memo state and
//! singleflight survive for as long as the member does. Applying a batch
//! builds the next snapshot *aside*, reusing the member `Arc` for every
//! untouched video — their warm caches carry over bit-for-bit — and
//! building fresh members (new cache generation, empty caches) only for
//! ingested and updated videos. Removed and replaced members simply drop
//! with the old snapshot once the last pinned query releases it. The
//! `cache.invalidation.evicted` / `cache.invalidation.retained` counters
//! account the warm tables destroyed vs. preserved by each swap, so "we
//! invalidate exactly the mutated videos" is measurable, not aspirational.
//!
//! Failure atomicity: a batch either commits in full or leaves the store,
//! log and snapshot untouched at the pre-batch epoch. The rebuild of
//! fresh members runs *before* anything is published, and an injected
//! fault (see [`LiveVideoDb::with_apply_faults`]) aborts the whole apply
//! with [`ApplyError::Injected`] — the chaos suite verifies digest
//! equality with an untouched store.
//!
//! Soundness under churn: a degraded answer's `missing_bound` is the
//! formula-level maximum similarity, which depends only on the query —
//! never on which videos exist — so the bound a pinned query reports is
//! sound at its own epoch regardless of batches applied concurrently.

use crate::shard::{
    normalize_query, shard_of, ShardId, ShardedAnswer, ShardedDegraded, ShardedTopK,
};
use crate::{CacheConfig, PictureSystem, ScoringConfig};
use simvid_core::{merge_shard_streams, Engine, EngineConfig, EngineError, ShardHit, ShardStream};
use simvid_htl::Formula;
use simvid_model::{
    AppliedBatch, CorpusEpoch, CorpusError, CorpusLog, CorpusOp, VideoId, VideoStore, VideoTree,
};
use simvid_obs::Registry;
use simvid_resilience::{failover_order, Fault, FaultPlan};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Topology and tuning of a [`LiveVideoDb`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of shards the corpus hash-partitions into.
    pub shards: u32,
    /// Number of replica [`PictureSystem`]s per video.
    pub replicas: u32,
    /// Similarity scoring configuration, shared by every provider.
    pub scoring: ScoringConfig,
    /// Engine configuration for per-member evaluations.
    pub engine: EngineConfig,
    /// Atomic-cache configuration per provider.
    pub cache: CacheConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            shards: 1,
            replicas: 1,
            scoring: ScoringConfig::default(),
            engine: EngineConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// One live video: its shared tree plus `R` replica providers. The
/// member — and with it every warm cache — is reused by reference across
/// snapshots until the video's content changes.
struct LiveMember {
    video: VideoId,
    /// Unique per (video, content) pair: a fresh member gets a fresh
    /// generation, so stale cached state is unreachable by construction.
    generation: u64,
    tree: Arc<VideoTree>,
    replicas: Vec<PictureSystem<'static>>,
}

impl LiveMember {
    /// Warm scored tables across this member's replicas.
    fn resident_tables(&self) -> u64 {
        self.replicas
            .iter()
            .map(|p| p.resident_tables() as u64)
            .sum()
    }
}

/// An immutable view of the whole corpus at one epoch.
struct LiveSnapshot {
    epoch: CorpusEpoch,
    replicas: u32,
    shards: Vec<Vec<Arc<LiveMember>>>,
}

/// Why [`LiveVideoDb::apply`] rejected a batch. Either way the store is
/// untouched: same contents, same snapshot, same (pre-batch) epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// Store validation rejected the batch (unknown or removed id).
    Rejected(CorpusError),
    /// An injected fault (chaos testing) aborted the snapshot rebuild
    /// before anything was published.
    Injected {
        /// The video whose member rebuild the fault landed on.
        video: VideoId,
        /// The injected fault, rendered.
        fault: String,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Rejected(e) => write!(f, "batch rejected: {e}"),
            ApplyError::Injected { video, fault } => {
                write!(
                    f,
                    "injected fault during apply of video {}: {fault}",
                    video.0
                )
            }
        }
    }
}

impl std::error::Error for ApplyError {}

struct Inner {
    store: VideoStore,
    log: CorpusLog,
    snapshot: Arc<LiveSnapshot>,
    next_generation: u64,
}

/// A mutable, epoch-versioned corpus serving scatter-gather top-`k` with
/// per-video incremental invalidation. See the module docs for the
/// isolation and invalidation model.
pub struct LiveVideoDb {
    cfg: LiveConfig,
    registry: Arc<Registry>,
    inner: Mutex<Inner>,
    evicted: Arc<simvid_obs::Counter>,
    retained: Arc<simvid_obs::Counter>,
    epoch_gauge: Arc<simvid_obs::Gauge>,
    apply_faults: Option<FaultPlan>,
}

impl LiveVideoDb {
    /// Takes ownership of `store` (at whatever epoch it is at) and builds
    /// the initial snapshot; the internal [`CorpusLog`] starts here, so
    /// [`LiveVideoDb::replay_to`] can rebuild any epoch from this one on.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` or `cfg.replicas` is zero.
    #[must_use]
    pub fn new(store: VideoStore, cfg: LiveConfig, registry: Arc<Registry>) -> Self {
        assert!(cfg.shards > 0, "shard count must be positive");
        assert!(cfg.replicas > 0, "replica count must be positive");
        let epoch = store.epoch();
        let mut next_generation = 0;
        let mut shards: Vec<Vec<Arc<LiveMember>>> = (0..cfg.shards).map(|_| Vec::new()).collect();
        for (video, tree) in store.iter() {
            let member = build_member(
                &cfg,
                &registry,
                video,
                Arc::new(tree.clone()),
                epoch,
                next_generation,
            );
            next_generation += 1;
            shards[shard_of(video, cfg.shards).0 as usize].push(member);
        }
        let snapshot = Arc::new(LiveSnapshot {
            epoch,
            replicas: cfg.replicas,
            shards,
        });
        let epoch_gauge = registry.gauge("corpus.epoch");
        epoch_gauge.set(epoch.0 as i64);
        LiveVideoDb {
            evicted: registry.counter("cache.invalidation.evicted"),
            retained: registry.counter("cache.invalidation.retained"),
            epoch_gauge,
            inner: Mutex::new(Inner {
                log: CorpusLog::starting_from(store.clone()),
                store,
                snapshot,
                next_generation,
            }),
            cfg,
            registry,
            apply_faults: None,
        }
    }

    /// Arms fault injection inside [`LiveVideoDb::apply`]: before each
    /// fresh member is built, the plan is consulted with key
    /// `apply/v<id>` at the batch's target epoch. A returned fault aborts
    /// the whole batch pre-publication (all-or-nothing).
    #[must_use]
    pub fn with_apply_faults(mut self, plan: FaultPlan) -> Self {
        self.apply_faults = Some(plan);
        self
    }

    /// The metrics registry shared by every provider.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The serving topology and tuning.
    #[must_use]
    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }

    /// The current (head) corpus epoch.
    #[must_use]
    pub fn epoch(&self) -> CorpusEpoch {
        self.inner.lock().expect("live store lock").store.epoch()
    }

    /// Rebuilds the store at `epoch` from scratch by replaying the
    /// mutation log — the differential-testing oracle.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` predates this db's construction or exceeds the
    /// head epoch.
    #[must_use]
    pub fn replay_to(&self, epoch: CorpusEpoch) -> VideoStore {
        self.inner
            .lock()
            .expect("live store lock")
            .log
            .replay_to(epoch)
    }

    /// Pins the current snapshot: a cheap `Arc` clone under a brief lock.
    /// Queries on the pin see exactly the pinned epoch however many
    /// batches are applied concurrently.
    #[must_use]
    pub fn pin(&self) -> LivePin {
        let inner = self.inner.lock().expect("live store lock");
        LivePin {
            snapshot: Arc::clone(&inner.snapshot),
            engine_cfg: self.cfg.engine,
            registry: Arc::clone(&self.registry),
        }
    }

    /// Applies a mutation batch atomically: validates it, rebuilds the
    /// affected members aside, and only then publishes the new snapshot
    /// and epoch. Untouched videos keep their member — and every warm
    /// cache — by reference; `cache.invalidation.retained` accounts their
    /// surviving tables, `cache.invalidation.evicted` the tables dropped
    /// with updated/removed members.
    ///
    /// # Errors
    ///
    /// [`ApplyError::Rejected`] when validation fails and
    /// [`ApplyError::Injected`] when an armed [`FaultPlan`] fires; both
    /// leave the store at the pre-batch epoch with the old snapshot
    /// intact.
    pub fn apply(&self, ops: &[CorpusOp]) -> Result<AppliedBatch, ApplyError> {
        let mut inner = self.inner.lock().expect("live store lock");
        let mut staged = inner.store.clone();
        let batch = staged.apply(ops).map_err(ApplyError::Rejected)?;
        let epoch = batch.epoch;

        let reuse: HashMap<u32, &Arc<LiveMember>> = inner
            .snapshot
            .shards
            .iter()
            .flatten()
            .map(|m| (m.video.0, m))
            .collect();
        let touched: HashSet<u32> = batch
            .invalidated()
            .chain(batch.ingested.iter().copied())
            .map(|v| v.0)
            .collect();

        let mut next_generation = inner.next_generation;
        let mut shards: Vec<Vec<Arc<LiveMember>>> =
            (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut retained = 0u64;
        for (video, tree) in staged.iter() {
            let member = match reuse.get(&video.0) {
                Some(m) if !touched.contains(&video.0) => {
                    retained += m.resident_tables();
                    Arc::clone(m)
                }
                _ => {
                    if let Some(plan) = &self.apply_faults {
                        match plan.decide(epoch.0, &format!("apply/v{}", video.0), 0) {
                            Some(Fault::Delay(d)) => std::thread::sleep(d),
                            Some(f) => {
                                // Nothing published yet: store, log and
                                // snapshot are all pre-batch.
                                return Err(ApplyError::Injected {
                                    video,
                                    fault: format!("{f:?}"),
                                });
                            }
                            None => {}
                        }
                    }
                    let gen = next_generation;
                    next_generation += 1;
                    build_member(
                        &self.cfg,
                        &self.registry,
                        video,
                        Arc::new(tree.clone()),
                        epoch,
                        gen,
                    )
                }
            };
            shards[shard_of(video, self.cfg.shards).0 as usize].push(member);
        }
        let evicted: u64 = batch
            .invalidated()
            .filter_map(|v| reuse.get(&v.0))
            .map(|m| m.resident_tables())
            .sum();

        // Point of no return: publish everything together.
        inner.store = staged;
        inner.log.record(ops);
        inner.snapshot = Arc::new(LiveSnapshot {
            epoch,
            replicas: self.cfg.replicas,
            shards,
        });
        inner.next_generation = next_generation;
        self.evicted.add(evicted);
        self.retained.add(retained);
        self.epoch_gauge.set(epoch.0 as i64);
        Ok(batch)
    }
}

fn build_member(
    cfg: &LiveConfig,
    registry: &Arc<Registry>,
    video: VideoId,
    tree: Arc<VideoTree>,
    epoch: CorpusEpoch,
    generation: u64,
) -> Arc<LiveMember> {
    let replicas = (0..cfg.replicas)
        .map(|_| {
            PictureSystem::shared(
                Arc::clone(&tree),
                cfg.scoring.clone(),
                cfg.cache,
                Arc::clone(registry),
            )
            .with_provenance(epoch, generation)
        })
        .collect();
    Arc::new(LiveMember {
        video,
        generation,
        tree,
        replicas,
    })
}

/// A pinned, immutable view of the corpus at one epoch. All retrieval
/// runs here; the pin keeps its snapshot (trees, providers, warm caches)
/// alive until dropped, so in-flight queries are never torn by an apply.
#[derive(Clone)]
pub struct LivePin {
    snapshot: Arc<LiveSnapshot>,
    engine_cfg: EngineConfig,
    registry: Arc<Registry>,
}

impl LivePin {
    /// The epoch this pin serves.
    #[must_use]
    pub fn epoch(&self) -> CorpusEpoch {
        self.snapshot.epoch
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.snapshot.shards.len() as u32
    }

    /// Number of live videos in this snapshot.
    #[must_use]
    pub fn video_count(&self) -> usize {
        self.snapshot.shards.iter().map(Vec::len).sum()
    }

    /// The cache generation of a live video's member, or `None` if the
    /// video is absent from this snapshot. The generation changes exactly
    /// when the video's content does.
    #[must_use]
    pub fn generation_of(&self, video: VideoId) -> Option<u64> {
        self.member(video).map(|m| m.generation)
    }

    /// The primary-replica provider of a live video — the cache the
    /// singleflight storm tests probe directly.
    #[must_use]
    pub fn provider(&self, video: VideoId) -> Option<&PictureSystem<'static>> {
        self.member(video).map(|m| &m.replicas[0])
    }

    fn member(&self, video: VideoId) -> Option<&Arc<LiveMember>> {
        let shard = shard_of(video, self.shard_count());
        self.snapshot.shards[shard.0 as usize]
            .iter()
            .find(|m| m.video == video)
    }

    /// Evaluates `query` on one shard, walking each member's replicas in
    /// [`failover_order`] (seeded by this pin's epoch) past degradable
    /// failures. All replicas failing surfaces as the degradable
    /// [`EngineError::ReplicasExhausted`], which
    /// [`LivePin::gather`] turns into a sound degraded answer.
    ///
    /// # Errors
    ///
    /// Any non-degradable [`EngineError`], or [`EngineError::ReplicasExhausted`]
    /// when every replica of the shard failed degradably.
    pub fn eval_shard(
        &self,
        shard: ShardId,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardStream, EngineError> {
        let normalized = normalize_query(query)?;
        self.eval_shard_normalized(shard, normalized.as_ref(), depth, k)
    }

    fn eval_shard_normalized(
        &self,
        shard: ShardId,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardStream, EngineError> {
        let order = failover_order(self.snapshot.epoch.0, shard.0, self.snapshot.replicas);
        let mut last: Option<EngineError> = None;
        for ridx in order {
            match self.eval_shard_on(shard, ridx as usize, query, depth, k) {
                Ok(stream) => return Ok(stream),
                Err(e) if e.is_degradable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(EngineError::ReplicasExhausted(format!(
            "all {} replicas of shard {} failed (last: {})",
            self.snapshot.replicas,
            shard,
            last.map_or_else(|| "none tried".to_owned(), |e| e.to_string()),
        )))
    }

    fn eval_shard_on(
        &self,
        shard: ShardId,
        ridx: usize,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardStream, EngineError> {
        let mut hits: Vec<ShardHit> = Vec::new();
        for m in &self.snapshot.shards[shard.0 as usize] {
            if depth >= m.tree.depth() {
                continue;
            }
            let provider = &m.replicas[ridx];
            let engine = Engine::with_registry(
                provider,
                &m.tree,
                self.engine_cfg,
                Arc::clone(&self.registry),
            );
            for seg in engine.top_k_closed(query, depth, k)? {
                hits.push(ShardHit {
                    video: m.video,
                    pos: seg.pos,
                    sim: seg.sim,
                });
            }
        }
        Ok(ShardStream::new(shard.0, hits))
    }

    /// Merges per-shard outcomes exactly as
    /// [`crate::ShardedVideoDb::gather`] does — same counters
    /// (`shard.outcome.*`, `shard.candidates_pruned`,
    /// `shard.early_terminated`), same `missing_bound` construction — so
    /// a live corpus is accounted identically to a frozen one.
    ///
    /// # Errors
    ///
    /// The first non-degradable shard error.
    pub fn gather(
        &self,
        per_shard: Vec<(ShardId, Result<ShardStream, EngineError>)>,
        k: usize,
    ) -> Result<ShardedAnswer, EngineError> {
        let ok = self.registry.counter("shard.outcome.ok");
        let failed_ctr = self.registry.counter("shard.outcome.failed");
        let pruned = self.registry.counter("shard.candidates_pruned");
        let early = self.registry.counter("shard.early_terminated");
        let mut streams: Vec<ShardStream> = Vec::with_capacity(per_shard.len());
        let mut failed: Vec<(ShardId, String)> = Vec::new();
        for (id, outcome) in per_shard {
            match outcome {
                Ok(stream) => {
                    ok.inc();
                    streams.push(stream);
                }
                Err(e) if e.is_degradable() => {
                    failed_ctr.inc();
                    failed.push((id, e.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        // The formula-level maximum similarity is video-independent —
        // in particular, independent of the corpus epoch — so any
        // surviving hit's `max` soundly bounds anything a failed shard
        // could have contributed, churn or no churn.
        let missing_bound = streams
            .iter()
            .find_map(|s| s.hits.first().map(|h| h.sim.max))
            .unwrap_or(f64::INFINITY);
        let (ranked, merge) = merge_shard_streams(&streams, k);
        pruned.add(merge.candidates_pruned);
        early.add(merge.early_terminated);
        if failed.is_empty() {
            Ok(ShardedAnswer::Complete(ShardedTopK { ranked, merge }))
        } else {
            Ok(ShardedAnswer::Degraded(ShardedDegraded {
                ranked,
                merge,
                failed,
                missing_bound,
            }))
        }
    }

    /// Scatter-gather top-`k` over this pin's epoch. Bit-identical to a
    /// [`crate::ShardedVideoDb`] partitioned from the store rebuilt at
    /// the same epoch — the oracle property the churn suites enforce.
    ///
    /// # Errors
    ///
    /// Non-degradable errors only; shard-level degradable failures
    /// resolve to [`ShardedAnswer::Degraded`].
    pub fn top_k(
        &self,
        query: &Formula,
        depth: u8,
        k: usize,
    ) -> Result<ShardedAnswer, EngineError> {
        let normalized = normalize_query(query)?;
        let query = normalized.as_ref();
        let per_shard = (0..self.shard_count())
            .map(|s| {
                let id = ShardId(s);
                (id, self.eval_shard_normalized(id, query, depth, k))
            })
            .collect();
        self.gather(per_shard, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedVideoDb;
    use simvid_htl::parse;
    use simvid_model::VideoBuilder;

    fn video(title: &str, gun_shots: &[bool]) -> VideoTree {
        let mut b = VideoBuilder::new(title);
        b.set_level_names(["video", "shot"]);
        for (i, &has) in gun_shots.iter().enumerate() {
            b.child(format!("shot{i}"));
            if has {
                let o = b.object(1, "person", None);
                b.relationship("holds_gun", [o]);
            } else {
                b.object(2, "horse", None);
            }
            b.up();
        }
        b.finish().unwrap()
    }

    fn store() -> VideoStore {
        let mut s = VideoStore::new();
        s.add(video("a", &[false, true, false, true]));
        s.add(video("b", &[true, true]));
        s.add(video("c", &[false, false, true]));
        s.add(video("d", &[true]));
        s
    }

    fn live(shards: u32, replicas: u32) -> LiveVideoDb {
        LiveVideoDb::new(
            store(),
            LiveConfig {
                shards,
                replicas,
                ..LiveConfig::default()
            },
            Arc::new(Registry::new()),
        )
    }

    fn frozen_answer(s: &VideoStore, shards: u32, q: &Formula, k: usize) -> Vec<ShardHit> {
        let db = ShardedVideoDb::partition(
            s,
            shards,
            &ScoringConfig::default(),
            EngineConfig::default(),
            CacheConfig::default(),
            Arc::new(Registry::new()),
        );
        match db.top_k(q, 1, k).unwrap() {
            ShardedAnswer::Complete(t) => t.ranked,
            ShardedAnswer::Degraded(_) => panic!("frozen oracle degraded"),
        }
    }

    #[test]
    fn pinned_queries_match_frozen_store_before_any_mutation() {
        let q = parse("exists x . person(x) and holds_gun(x)").unwrap();
        for shards in 1..=3 {
            for replicas in 1..=2 {
                let db = live(shards, replicas);
                let pin = db.pin();
                assert_eq!(pin.epoch(), CorpusEpoch(0));
                let got = db.pin().top_k(&q, 1, 5).unwrap();
                assert!(got.is_complete());
                assert_eq!(got.ranked(), &frozen_answer(&store(), shards, &q, 5)[..]);
            }
        }
    }

    #[test]
    fn apply_swaps_snapshot_but_pinned_queries_keep_their_epoch() {
        let q = parse("exists x . person(x) and holds_gun(x)").unwrap();
        let db = live(2, 1);
        let old_pin = db.pin();
        let before = old_pin.top_k(&q, 1, 10).unwrap();

        let batch = db
            .apply(&[
                CorpusOp::Remove(VideoId(1)),
                CorpusOp::Ingest(video("e", &[true, false, true])),
            ])
            .unwrap();
        assert_eq!(batch.epoch, CorpusEpoch(1));
        assert_eq!(db.epoch(), CorpusEpoch(1));

        // The old pin still answers at epoch 0, bit-identically.
        assert_eq!(old_pin.epoch(), CorpusEpoch(0));
        assert_eq!(old_pin.top_k(&q, 1, 10).unwrap(), before);

        // A fresh pin answers like a frozen partition of the replayed
        // store at epoch 1.
        let pin = db.pin();
        assert_eq!(pin.epoch(), CorpusEpoch(1));
        let got = pin.top_k(&q, 1, 10).unwrap();
        let rebuilt = db.replay_to(CorpusEpoch(1));
        assert_eq!(got.ranked(), &frozen_answer(&rebuilt, 2, &q, 10)[..]);
    }

    #[test]
    fn untouched_members_are_reused_and_mutated_ones_are_not() {
        let db = live(2, 1);
        let q = parse("exists x . holds_gun(x)").unwrap();
        // Warm the caches.
        db.pin().top_k(&q, 1, 5).unwrap();
        let before = db.pin();
        let gens: Vec<Option<u64>> = (0..4).map(|v| before.generation_of(VideoId(v))).collect();

        db.apply(&[CorpusOp::Update(VideoId(2), video("c2", &[true]))])
            .unwrap();
        let after = db.pin();
        for v in [0u32, 1, 3] {
            assert_eq!(
                after.generation_of(VideoId(v)),
                gens[v as usize],
                "untouched video {v} must keep its member"
            );
        }
        assert_ne!(after.generation_of(VideoId(2)), gens[2]);
        // Counters: something was retained (videos 0/1/3 were warm),
        // and the evicted count covers only video 2's tables.
        let snap = db.registry().snapshot();
        assert!(snap.counter("cache.invalidation.retained").unwrap_or(0) > 0);
        assert_eq!(snap.gauge("corpus.epoch"), Some(1));
    }

    #[test]
    fn rejected_and_faulted_batches_leave_the_pre_batch_epoch() {
        let q = parse("exists x . holds_gun(x)").unwrap();
        let db = live(2, 1);
        let before = db.pin().top_k(&q, 1, 10).unwrap();

        let err = db.apply(&[CorpusOp::Remove(VideoId(99))]).unwrap_err();
        assert!(matches!(err, ApplyError::Rejected(_)));
        assert_eq!(db.epoch(), CorpusEpoch(0));
        assert_eq!(db.pin().top_k(&q, 1, 10).unwrap(), before);

        // Injected fault: always-fire plan aborts the batch atomically.
        let db = live(2, 1).with_apply_faults(FaultPlan::chaos_default());
        let before = db.pin().top_k(&q, 1, 10).unwrap();
        let mut aborted = false;
        for i in 0..16u32 {
            let r = db.apply(&[CorpusOp::Ingest(video(&format!("n{i}"), &[true]))]);
            match r {
                Ok(_) => {}
                Err(ApplyError::Injected { .. }) => {
                    aborted = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(aborted, "chaos plan should fire within 16 batches");
        // Whatever committed before the abort is consistent: the pinned
        // answer replays bit-identically from the log.
        let head = db.epoch();
        let rebuilt = db.replay_to(head);
        assert_eq!(rebuilt.epoch(), head);
        let _ = before;
    }
}
