//! `videoql`: an interactive HTL shell over a video database.
//!
//! ```sh
//! cargo run -p simvid-examples --bin videoql            # starts with demo data
//! cargo run -p simvid-examples --bin videoql -- db.json # load a JSON store
//! ```
//!
//! Commands:
//!
//! ```text
//! query <HTL>      evaluate a query, print the global top-k
//! explain <HTL>    parse, classify and list the atomic units of a query
//! level <name>     set the evaluation level (default: shot)
//! k <n>            set the result count (default: 10)
//! videos           list the loaded videos
//! save <path>      write the store as JSON
//! help / quit
//! ```

use simvid_htl::{atomic_units, classify, parse};
use simvid_model::VideoStore;
use simvid_picture::{QueryLevel, VideoDatabase};
use simvid_workload::casablanca;
use std::io::{BufRead, Write};

fn demo_store() -> VideoStore {
    let mut store = VideoStore::new();
    store.add(casablanca::video());
    store
}

fn main() {
    let store: VideoStore = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad store JSON: {e}"))
        }
        None => {
            println!("no store given; loading the Casablanca demo video");
            demo_store()
        }
    };
    let mut level = QueryLevel::Named("shot".into());
    let mut k = 10usize;

    println!("videoql — type `help` for commands\n");
    let stdin = std::io::stdin();
    loop {
        print!("videoql> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => break,
            "help" => {
                println!(
                    "query <HTL>   explain <HTL>   level <name>   k <n>   videos   save <path>   quit"
                );
            }
            "videos" => {
                for (id, tree) in store.iter() {
                    println!(
                        "  {id}: {:?} — {} levels, {} segments",
                        tree.title(),
                        tree.depth(),
                        tree.segment_count()
                    );
                }
            }
            "level" => {
                level = match rest.parse::<u8>() {
                    Ok(d) => QueryLevel::Depth(d),
                    Err(_) if rest == "leaves" => QueryLevel::Leaves,
                    Err(_) => QueryLevel::Named(rest.to_owned()),
                };
                println!("level set to {level:?}");
            }
            "k" => match rest.parse() {
                Ok(n) => {
                    k = n;
                    println!("k = {k}");
                }
                Err(_) => println!("usage: k <n>"),
            },
            "save" => {
                match serde_json::to_string_pretty(&store)
                    .map_err(|e| e.to_string())
                    .and_then(|s| std::fs::write(rest, s).map_err(|e| e.to_string()))
                {
                    Ok(()) => println!("saved to {rest}"),
                    Err(e) => println!("save failed: {e}"),
                }
            }
            "explain" => match parse(rest) {
                Ok(f) => {
                    println!("parsed:  {f}");
                    println!("class:   {:?}", classify(&f));
                    let (hoisted, before, after) = simvid_htl::normalize_for_engine(&f);
                    if after < before {
                        println!("hoisted: {hoisted}");
                        println!("         ({before:?} -> {after:?} after quantifier hoisting)");
                    }
                    println!("units:");
                    for u in atomic_units(&f) {
                        let objs: Vec<&str> = u.free_objs.iter().map(|v| v.0.as_str()).collect();
                        println!("  {}  (free objects: {objs:?})", u.formula);
                    }
                }
                Err(e) => println!("parse error: {e}"),
            },
            "query" => match parse(rest) {
                Ok(f) => {
                    let db = VideoDatabase::new(&store).with_scoring(casablanca::weights());
                    match db.retrieve(&f, &level, k) {
                        Ok(hits) if hits.is_empty() => println!("no segments match"),
                        Ok(hits) => {
                            println!(
                                "{:>4}  {:>6}  {:>8}  {:>22}  {:>10}",
                                "#", "video", "position", "label", "similarity"
                            );
                            for (i, h) in hits.iter().enumerate() {
                                let tree = store.video(h.video);
                                println!(
                                    "{:>4}  {:>6}  {:>8}  {:>22}  {:>6.3} ({:>4.0}%)",
                                    i + 1,
                                    h.video.to_string(),
                                    h.pos,
                                    tree.node(h.segment).label,
                                    h.sim.act,
                                    100.0 * h.sim.frac()
                                );
                            }
                        }
                        Err(e) => println!("evaluation error: {e}"),
                    }
                }
                Err(e) => println!("parse error: {e}"),
            },
            other => println!("unknown command `{other}` — try `help`"),
        }
    }
}
