//! The paper's motivating Gulf-war scenario (§2.1): a deep hierarchy
//! (video → sub-plots → scenes → shots) queried with level modal operators
//! and temporal operators — *extended conjunctive* formulas.
//!
//! ```sh
//! cargo run -p simvid-examples --bin gulf_war
//! ```

use simvid_core::{Engine, Sim};
use simvid_examples::print_list;
use simvid_picture::{PictureSystem, ScoringConfig};
use simvid_workload::gulfwar;

fn main() {
    let video = gulfwar::video();
    println!(
        "video {:?}: {} levels, {} scenes, {} shots\n",
        video.title(),
        video.depth(),
        video.level_sequence(2).len(),
        video.level_sequence(3).len(),
    );
    for (d, name) in (0..video.depth()).filter_map(|d| video.level_name(d).map(|n| (d, n))) {
        println!(
            "  level {} = {name} ({} segments)",
            d + 1,
            video.level_sequence(d).len()
        );
    }
    println!();

    let system = PictureSystem::new(&video, ScoringConfig::default());
    let engine = Engine::new(&system, &video);

    // Paper formula (A), asserted at the shot level of each scene: planes
    // on the ground, then next a sequence in the air until one is shot
    // down. The level modal operator makes this extended conjunctive.
    let formula_a = gulfwar::formula_a();
    println!("formula (A): {formula_a}\n");
    let per_scene = engine
        .eval_closed_at_level(&formula_a, 2)
        .expect("formula A evaluates");
    print_list(
        "per-scene similarity (formula A at each scene):",
        &per_scene,
    );
    println!("scene 1 (command centers) realises the whole pattern — an exact match;");
    println!("scene 2 (airfields) has planes in the air but none shot down — partial.\n");

    // Browsing query on the whole video (top of the hierarchy).
    let browse = gulfwar::browse_query();
    let sim: Sim = engine.eval_video(&browse).expect("browse query");
    println!(
        "browsing query {browse}:\n  similarity {sim} (exact: {})\n",
        sim.is_exact()
    );

    // A cross-level query: somewhere a sub-plot whose shots show a
    // surrender.
    let plot_query = gulfwar::surrender_query();
    let sim = engine.eval_video(&plot_query).expect("plot query");
    println!("plot query: {plot_query}\n  similarity {sim}");
}
