//! Shared pretty-printing helpers for the example binaries.

use simvid_core::{rank_entries, SimilarityList};

/// Prints a similarity list as a paper-style result table.
pub fn print_list(title: &str, list: &SimilarityList) {
    println!("{title}  (max similarity {:.3})", list.max());
    println!(
        "{:>9}  {:>7}  {:>12}  {:>9}",
        "Start-id", "End-id", "Similarity", "Fraction"
    );
    for e in list.entries() {
        println!(
            "{:>9}  {:>7}  {:>12.3}  {:>8.1}%",
            e.iv.beg,
            e.iv.end,
            e.act,
            100.0 * e.act / list.max()
        );
    }
    println!();
}

/// Prints the top entries of a list in ranked order.
pub fn print_ranked(title: &str, list: &SimilarityList, k: usize) {
    println!("{title}");
    println!(
        "{:>4}  {:>9}  {:>7}  {:>12}",
        "#", "Start-id", "End-id", "Similarity"
    );
    for (i, (iv, sim)) in rank_entries(list).into_iter().take(k).enumerate() {
        println!(
            "{:>4}  {:>9}  {:>7}  {:>12.3}",
            i + 1,
            iv.beg,
            iv.end,
            sim.act
        );
    }
    println!();
}
