//! The two evaluation approaches side by side (§4.2): the direct list
//! algorithms vs the SQL translation, on a random workload. Prints the
//! generated SQL for inspection and verifies both engines agree.
//!
//! ```sh
//! cargo run --release -p simvid-examples --bin sql_vs_direct [size]
//! ```

use simvid_core::list;
use simvid_relal::{translate, Database};
use simvid_workload::randomlists::{generate, ListGenConfig};
use std::time::Instant;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let theta = 0.5;
    let cfg = ListGenConfig::default().with_n(n);
    let p1 = generate(&cfg, 1);
    let p2 = generate(&cfg, 2);
    println!(
        "size {n}: P1 has {} entries covering {} shots, P2 has {} entries\n",
        p1.len(),
        p1.coverage(),
        p2.len()
    );

    // Direct.
    let t = Instant::now();
    let direct = list::until(&p1, &p2, theta);
    let direct_time = t.elapsed();

    // SQL: show the statement sequence, then run it.
    let cut = theta * p1.max() - 1e-12;
    let script = translate::until_script("p1", "p2", "result", cut);
    println!("generated SQL for `P1 until P2`:\n{script}\n");

    let mut db = Database::new();
    translate::load_numbers(&mut db, n).unwrap();
    translate::load_list(&mut db, "p1", &p1).unwrap();
    translate::load_list(&mut db, "p2", &p2).unwrap();
    let t = Instant::now();
    db.execute_script(&script).unwrap();
    let sql_time = t.elapsed();
    let sql = translate::read_list(&db, "result", p2.max()).unwrap();

    // Agreement check (the paper: both systems produced identical tables).
    let (a, b) = (direct.to_dense(n as usize), sql.to_dense(n as usize));
    let agree = a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-9);
    println!("outputs agree: {agree}");
    println!("direct: {direct_time:?}  ({} output entries)", direct.len());
    println!(
        "sql:    {sql_time:?}  ({} statements)",
        db.statements_executed()
    );
    println!(
        "speedup of the direct method: {:.0}x",
        sql_time.as_secs_f64() / direct_time.as_secs_f64().max(1e-12)
    );
}
