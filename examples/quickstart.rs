//! Quickstart: build a tiny video, pose an HTL query, retrieve the top
//! matching shots.
//!
//! ```sh
//! cargo run -p simvid-examples --bin quickstart
//! ```

use simvid_core::{top_k, Engine};
use simvid_examples::print_list;
use simvid_htl::{classify, parse};
use simvid_model::VideoBuilder;
use simvid_picture::{PictureSystem, ScoringConfig};

fn main() {
    // 1. Model a short western: five shots with objects and relationships.
    let mut b = VideoBuilder::new("quickstart-western");
    b.set_level_names(["video", "shot"]);
    b.segment_attr("type", "western".into());

    b.child("ride-in");
    let john = b.object(1, "person", Some("John Wayne"));
    b.object(2, "horse", None);
    b.up();

    b.child("standoff");
    b.object(1, "person", Some("John Wayne"));
    let bandit = b.object(3, "bandit", None);
    b.relationship("holds_gun", [john]);
    b.relationship("holds_gun", [bandit]);
    b.up();

    b.child("shootout");
    b.object(1, "person", Some("John Wayne"));
    b.object(3, "bandit", None);
    b.relationship("fires_at", [john, bandit]);
    b.up();

    b.child("aftermath");
    b.object(3, "bandit", None);
    b.relationship("on_floor", [bandit]);
    b.up();

    b.child("sunset");
    b.object(1, "person", Some("John Wayne"));
    b.up();

    let video = b.finish().expect("valid video");

    // 2. An HTL query: John Wayne shoots a bandit (paper formula (B),
    //    simplified). Temporal operators walk the shot sequence.
    let query = parse(
        "exists x . exists y . \
         (person(x) and name(x) = \"John Wayne\" and bandit(y) and \
          holds_gun(x) and holds_gun(y)) \
         and eventually (fires_at(x, y) and eventually on_floor(y))",
    )
    .expect("query parses");
    println!("query: {query}");
    println!("class: {:?}\n", classify(&query));

    // 3. Evaluate with similarity semantics over the shot level.
    let system = PictureSystem::new(&video, ScoringConfig::default());
    let engine = Engine::new(&system, &video);
    let result = engine
        .eval_closed_at_level(&query, 1)
        .expect("query evaluates");
    print_list("similarity of every shot:", &result);

    // 4. Retrieve the top-k shots.
    println!("top 3 shots:");
    for hit in top_k(&result, 3) {
        let shot = video.level_sequence(1)[hit.pos as usize - 1];
        println!(
            "  shot {} ({}): similarity {:.2} of {:.2}",
            hit.pos,
            video.node(shot).label,
            hit.sim.act,
            hit.sim.max
        );
    }
}
