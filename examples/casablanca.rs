//! The paper's §4.1 experiment end to end: the 50-shot Casablanca fixture,
//! the `Moving-Train` and `Man-Woman` atomic predicates, and Query 1
//! (`Man-Woman and eventually Moving-Train`), reproducing Tables 1–4.
//!
//! ```sh
//! cargo run -p simvid-examples --bin casablanca
//! ```

use simvid_core::{list, rank_entries, Engine};
use simvid_examples::print_list;
use simvid_picture::PictureSystem;
use simvid_workload::casablanca;

fn main() {
    let video = casablanca::video();
    println!(
        "video: {:?} — {} shots after cut detection\n",
        video.title(),
        video.level_sequence(1).len()
    );

    let system = PictureSystem::new(&video, casablanca::weights());

    // Atomic similarity tables from the picture retrieval system.
    let moving_train = system
        .query_closed(&casablanca::moving_train(), 1)
        .expect("moving-train")
        .coalesce();
    print_list("Table 1 — Moving-Train:", &moving_train);

    let man_woman = system
        .query_closed(&casablanca::man_woman(), 1)
        .expect("man-woman")
        .coalesce();
    print_list("Table 2 — Man-Woman:", &man_woman);

    // The temporal combination, step by step.
    let eventually_train = list::eventually(&moving_train);
    print_list("Table 3 — eventually Moving-Train:", &eventually_train);

    let combined = list::and(&man_woman, &eventually_train);
    print_list(
        "Query 1 — Man-Woman and eventually Moving-Train:",
        &combined,
    );

    // And the same through the engine, ranked like the paper's Table 4.
    let engine = Engine::new(&system, &video);
    let via_engine = engine
        .eval_closed_at_level(&casablanca::query1(), 1)
        .expect("query 1 evaluates");
    println!("Table 4 — final result, ranked by similarity:");
    println!("{:>9}  {:>7}  {:>12}", "Start-id", "End-id", "Similarity");
    for (iv, sim) in rank_entries(&via_engine) {
        println!("{:>9}  {:>7}  {:>12.3}", iv.beg, iv.end, sim.act);
    }
    println!("\n(compare with the paper's Table 4: 12.382, 11.047, 11.047, 9.787, ...)");
}
