//! The freeze-quantifier example — paper formula (C), §2.4: "the video
//! starts with a picture containing an airplane followed by another
//! picture in which the same plane appears at a higher altitude."
//! Exercises value tables and attribute ranges (a full *conjunctive*
//! formula, beyond type (2)).
//!
//! ```sh
//! cargo run -p simvid-examples --bin airplane
//! ```

use simvid_core::Engine;
use simvid_examples::print_list;
use simvid_htl::{classify, parse};
use simvid_model::{AttrValue, VideoBuilder};
use simvid_picture::{PictureSystem, ScoringConfig};

fn main() {
    // Eight frames tracking two planes with per-frame heights.
    let heights_a = [100i64, 150, 250, 240, 230, 220, 210, 200]; // climbs then sinks
    let heights_b = [500i64, 480, 460, 440, 420, 400, 380, 360]; // only sinks
    let mut b = VideoBuilder::new("airshow");
    b.set_level_names(["video", "frame"]);
    for i in 0..heights_a.len() {
        b.child(format!("frame{}", i + 1));
        let a = b.object(1, "airplane", Some("red-plane"));
        b.object_attr(a, "height", AttrValue::Int(heights_a[i]));
        let bb = b.object(2, "airplane", Some("blue-plane"));
        b.object_attr(bb, "height", AttrValue::Int(heights_b[i]));
        b.up();
    }
    let video = b.finish().expect("valid video");

    let formula_c = parse(
        "exists z . present(z) and type(z) = \"airplane\" and \
         [h := height(z)] eventually (present(z) and height(z) > h)",
    )
    .expect("formula C parses");
    println!("formula (C): {formula_c}");
    println!("class: {:?}\n", classify(&formula_c));

    let system = PictureSystem::new(&video, ScoringConfig::default());
    let engine = Engine::new(&system, &video);
    let result = engine
        .eval_closed_at_level(&formula_c, 1)
        .expect("formula C evaluates");

    print_list("per-frame similarity of formula (C):", &result);
    println!("reading: frames 1-2 match exactly (the red plane later flies");
    println!("higher); later frames only partially (no plane tops its");
    println!("current height afterwards, but a plane is still present).");

    // The same query restricted to the blue plane's name — never climbs,
    // so no exact match anywhere.
    let blue_only = parse(
        "exists z . present(z) and name(z) = \"blue-plane\" and \
         [h := height(z)] eventually (present(z) and height(z) > h)",
    )
    .unwrap();
    let result = engine.eval_closed_at_level(&blue_only, 1).unwrap();
    print_list("same but pinned to the ever-sinking blue plane:", &result);
}
