/root/repo/target/debug/deps/exact_vs_similarity-be2c48198881fac3.d: tests/suite/exact_vs_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libexact_vs_similarity-be2c48198881fac3.rmeta: tests/suite/exact_vs_similarity.rs Cargo.toml

tests/suite/exact_vs_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
