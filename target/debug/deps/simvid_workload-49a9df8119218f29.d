/root/repo/target/debug/deps/simvid_workload-49a9df8119218f29.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

/root/repo/target/debug/deps/libsimvid_workload-49a9df8119218f29.rmeta: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
crates/workload/src/serve.rs:
