/root/repo/target/debug/deps/parallel_determinism-e5bb7ddccf2b7640.d: tests/suite/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-e5bb7ddccf2b7640.rmeta: tests/suite/parallel_determinism.rs Cargo.toml

tests/suite/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
