/root/repo/target/debug/deps/serve-ab1134e31faa9afa.d: tests/suite/serve.rs Cargo.toml

/root/repo/target/debug/deps/libserve-ab1134e31faa9afa.rmeta: tests/suite/serve.rs Cargo.toml

tests/suite/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
