/root/repo/target/debug/deps/proptest_parser_robust-3e9e5b56af01b128.d: crates/htl/tests/proptest_parser_robust.rs

/root/repo/target/debug/deps/proptest_parser_robust-3e9e5b56af01b128: crates/htl/tests/proptest_parser_robust.rs

crates/htl/tests/proptest_parser_robust.rs:
