/root/repo/target/debug/deps/simvid_model-288d54986a33f945.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_model-288d54986a33f945.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/meta.rs:
crates/model/src/object.rs:
crates/model/src/store.rs:
crates/model/src/tree.rs:
crates/model/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
