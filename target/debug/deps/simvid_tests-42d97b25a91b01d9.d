/root/repo/target/debug/deps/simvid_tests-42d97b25a91b01d9.d: tests/src/lib.rs

/root/repo/target/debug/deps/libsimvid_tests-42d97b25a91b01d9.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libsimvid_tests-42d97b25a91b01d9.rmeta: tests/src/lib.rs

tests/src/lib.rs:
