/root/repo/target/debug/deps/proptest_parser_robust-68d2c0e5515339a0.d: crates/htl/tests/proptest_parser_robust.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_parser_robust-68d2c0e5515339a0.rmeta: crates/htl/tests/proptest_parser_robust.rs Cargo.toml

crates/htl/tests/proptest_parser_robust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
