/root/repo/target/debug/deps/airplane-380513d3ecf0af18.d: examples/airplane.rs

/root/repo/target/debug/deps/airplane-380513d3ecf0af18: examples/airplane.rs

examples/airplane.rs:
