/root/repo/target/debug/deps/repro-c5cba5d6cd5b9c5e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c5cba5d6cd5b9c5e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
