/root/repo/target/debug/deps/sql_vs_direct-bc26efac933bfbed.d: examples/sql_vs_direct.rs Cargo.toml

/root/repo/target/debug/deps/libsql_vs_direct-bc26efac933bfbed.rmeta: examples/sql_vs_direct.rs Cargo.toml

examples/sql_vs_direct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
