/root/repo/target/debug/deps/quickstart-8947f1e93753137c.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-8947f1e93753137c: examples/quickstart.rs

examples/quickstart.rs:
