/root/repo/target/debug/deps/proptest_parser_robust-4c5c16d4af000ff1.d: crates/htl/tests/proptest_parser_robust.rs

/root/repo/target/debug/deps/proptest_parser_robust-4c5c16d4af000ff1: crates/htl/tests/proptest_parser_robust.rs

crates/htl/tests/proptest_parser_robust.rs:
