/root/repo/target/debug/deps/sql_type2-f35c52c407949a59.d: tests/suite/sql_type2.rs Cargo.toml

/root/repo/target/debug/deps/libsql_type2-f35c52c407949a59.rmeta: tests/suite/sql_type2.rs Cargo.toml

tests/suite/sql_type2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
