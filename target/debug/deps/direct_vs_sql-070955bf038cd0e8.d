/root/repo/target/debug/deps/direct_vs_sql-070955bf038cd0e8.d: tests/suite/direct_vs_sql.rs

/root/repo/target/debug/deps/direct_vs_sql-070955bf038cd0e8: tests/suite/direct_vs_sql.rs

tests/suite/direct_vs_sql.rs:
