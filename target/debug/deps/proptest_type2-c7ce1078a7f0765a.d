/root/repo/target/debug/deps/proptest_type2-c7ce1078a7f0765a.d: crates/relal/tests/proptest_type2.rs

/root/repo/target/debug/deps/proptest_type2-c7ce1078a7f0765a: crates/relal/tests/proptest_type2.rs

crates/relal/tests/proptest_type2.rs:
