/root/repo/target/debug/deps/simvid_workload-88c867bd4523771c.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs

/root/repo/target/debug/deps/libsimvid_workload-88c867bd4523771c.rlib: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs

/root/repo/target/debug/deps/libsimvid_workload-88c867bd4523771c.rmeta: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
