/root/repo/target/debug/deps/simvid_examples-0794f647f49649eb.d: examples/src/lib.rs

/root/repo/target/debug/deps/libsimvid_examples-0794f647f49649eb.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libsimvid_examples-0794f647f49649eb.rmeta: examples/src/lib.rs

examples/src/lib.rs:
