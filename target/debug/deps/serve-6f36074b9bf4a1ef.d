/root/repo/target/debug/deps/serve-6f36074b9bf4a1ef.d: crates/bench/benches/serve.rs

/root/repo/target/debug/deps/serve-6f36074b9bf4a1ef: crates/bench/benches/serve.rs

crates/bench/benches/serve.rs:
