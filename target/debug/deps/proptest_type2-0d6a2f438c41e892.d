/root/repo/target/debug/deps/proptest_type2-0d6a2f438c41e892.d: crates/relal/tests/proptest_type2.rs

/root/repo/target/debug/deps/proptest_type2-0d6a2f438c41e892: crates/relal/tests/proptest_type2.rs

crates/relal/tests/proptest_type2.rs:
