/root/repo/target/debug/deps/proptest_engine-42dc8d66a39328c3.d: crates/core/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-42dc8d66a39328c3: crates/core/tests/proptest_engine.rs

crates/core/tests/proptest_engine.rs:
