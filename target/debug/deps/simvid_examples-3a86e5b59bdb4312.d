/root/repo/target/debug/deps/simvid_examples-3a86e5b59bdb4312.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_examples-3a86e5b59bdb4312.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
