/root/repo/target/debug/deps/golden_paper-b62ef84c0a3c231e.d: tests/suite/golden_paper.rs

/root/repo/target/debug/deps/golden_paper-b62ef84c0a3c231e: tests/suite/golden_paper.rs

tests/suite/golden_paper.rs:
