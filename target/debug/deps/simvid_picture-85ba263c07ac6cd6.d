/root/repo/target/debug/deps/simvid_picture-85ba263c07ac6cd6.d: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

/root/repo/target/debug/deps/simvid_picture-85ba263c07ac6cd6: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

crates/picture/src/lib.rs:
crates/picture/src/cache.rs:
crates/picture/src/config.rs:
crates/picture/src/index.rs:
crates/picture/src/provider.rs:
crates/picture/src/query.rs:
crates/picture/src/score.rs:
crates/picture/src/video_db.rs:
