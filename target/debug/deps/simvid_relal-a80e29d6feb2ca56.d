/root/repo/target/debug/deps/simvid_relal-a80e29d6feb2ca56.d: crates/relal/src/lib.rs crates/relal/src/ast.rs crates/relal/src/catalog.rs crates/relal/src/db.rs crates/relal/src/error.rs crates/relal/src/exec.rs crates/relal/src/expr.rs crates/relal/src/lexer.rs crates/relal/src/parser.rs crates/relal/src/schema.rs crates/relal/src/table.rs crates/relal/src/translate.rs crates/relal/src/translate_table.rs crates/relal/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_relal-a80e29d6feb2ca56.rmeta: crates/relal/src/lib.rs crates/relal/src/ast.rs crates/relal/src/catalog.rs crates/relal/src/db.rs crates/relal/src/error.rs crates/relal/src/exec.rs crates/relal/src/expr.rs crates/relal/src/lexer.rs crates/relal/src/parser.rs crates/relal/src/schema.rs crates/relal/src/table.rs crates/relal/src/translate.rs crates/relal/src/translate_table.rs crates/relal/src/value.rs Cargo.toml

crates/relal/src/lib.rs:
crates/relal/src/ast.rs:
crates/relal/src/catalog.rs:
crates/relal/src/db.rs:
crates/relal/src/error.rs:
crates/relal/src/exec.rs:
crates/relal/src/expr.rs:
crates/relal/src/lexer.rs:
crates/relal/src/parser.rs:
crates/relal/src/schema.rs:
crates/relal/src/table.rs:
crates/relal/src/translate.rs:
crates/relal/src/translate_table.rs:
crates/relal/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
