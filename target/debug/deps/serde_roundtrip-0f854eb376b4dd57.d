/root/repo/target/debug/deps/serde_roundtrip-0f854eb376b4dd57.d: crates/model/tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-0f854eb376b4dd57.rmeta: crates/model/tests/serde_roundtrip.rs Cargo.toml

crates/model/tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
