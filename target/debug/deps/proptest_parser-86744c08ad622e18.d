/root/repo/target/debug/deps/proptest_parser-86744c08ad622e18.d: crates/relal/tests/proptest_parser.rs

/root/repo/target/debug/deps/proptest_parser-86744c08ad622e18: crates/relal/tests/proptest_parser.rs

crates/relal/tests/proptest_parser.rs:
