/root/repo/target/debug/deps/ablation-f5e38faa53ae824b.d: tests/suite/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-f5e38faa53ae824b.rmeta: tests/suite/ablation.rs Cargo.toml

tests/suite/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
