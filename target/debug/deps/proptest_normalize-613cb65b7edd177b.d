/root/repo/target/debug/deps/proptest_normalize-613cb65b7edd177b.d: crates/htl/tests/proptest_normalize.rs

/root/repo/target/debug/deps/proptest_normalize-613cb65b7edd177b: crates/htl/tests/proptest_normalize.rs

crates/htl/tests/proptest_normalize.rs:
