/root/repo/target/debug/deps/proptest_tree-ff89de443aa452a3.d: crates/model/tests/proptest_tree.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_tree-ff89de443aa452a3.rmeta: crates/model/tests/proptest_tree.rs Cargo.toml

crates/model/tests/proptest_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
