/root/repo/target/debug/deps/simvid_model-2548eda5ff6976c3.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

/root/repo/target/debug/deps/simvid_model-2548eda5ff6976c3: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/meta.rs:
crates/model/src/object.rs:
crates/model/src/store.rs:
crates/model/src/tree.rs:
crates/model/src/value.rs:
