/root/repo/target/debug/deps/simvid_examples-10c4caec161720c6.d: examples/src/lib.rs

/root/repo/target/debug/deps/simvid_examples-10c4caec161720c6: examples/src/lib.rs

examples/src/lib.rs:
