/root/repo/target/debug/deps/simvid_tests-d2dcf0c3f600c27f.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_tests-d2dcf0c3f600c27f.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
