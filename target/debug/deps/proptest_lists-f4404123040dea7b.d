/root/repo/target/debug/deps/proptest_lists-f4404123040dea7b.d: crates/core/tests/proptest_lists.rs

/root/repo/target/debug/deps/proptest_lists-f4404123040dea7b: crates/core/tests/proptest_lists.rs

crates/core/tests/proptest_lists.rs:
