/root/repo/target/debug/deps/exact_vs_similarity-065b41898b05bb93.d: tests/suite/exact_vs_similarity.rs

/root/repo/target/debug/deps/exact_vs_similarity-065b41898b05bb93: tests/suite/exact_vs_similarity.rs

tests/suite/exact_vs_similarity.rs:
