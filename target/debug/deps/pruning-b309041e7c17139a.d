/root/repo/target/debug/deps/pruning-b309041e7c17139a.d: tests/suite/pruning.rs

/root/repo/target/debug/deps/pruning-b309041e7c17139a: tests/suite/pruning.rs

tests/suite/pruning.rs:
