/root/repo/target/debug/deps/ablation-ec8250cc099a8d9c.d: tests/suite/ablation.rs

/root/repo/target/debug/deps/ablation-ec8250cc099a8d9c: tests/suite/ablation.rs

tests/suite/ablation.rs:
