/root/repo/target/debug/deps/serve-bb5d90c55c54b839.d: crates/bench/benches/serve.rs Cargo.toml

/root/repo/target/debug/deps/libserve-bb5d90c55c54b839.rmeta: crates/bench/benches/serve.rs Cargo.toml

crates/bench/benches/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
