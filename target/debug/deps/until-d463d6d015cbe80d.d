/root/repo/target/debug/deps/until-d463d6d015cbe80d.d: crates/bench/benches/until.rs

/root/repo/target/debug/deps/until-d463d6d015cbe80d: crates/bench/benches/until.rs

crates/bench/benches/until.rs:
