/root/repo/target/debug/deps/repro-6737c597c2bc3638.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6737c597c2bc3638: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
