/root/repo/target/debug/deps/repro-dd9c047184f2ba9a.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-dd9c047184f2ba9a.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
