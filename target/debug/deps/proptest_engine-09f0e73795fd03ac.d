/root/repo/target/debug/deps/proptest_engine-09f0e73795fd03ac.d: crates/core/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-09f0e73795fd03ac: crates/core/tests/proptest_engine.rs

crates/core/tests/proptest_engine.rs:
