/root/repo/target/debug/deps/hierarchy-b5fd50ed8bdde0ae.d: tests/suite/hierarchy.rs

/root/repo/target/debug/deps/hierarchy-b5fd50ed8bdde0ae: tests/suite/hierarchy.rs

tests/suite/hierarchy.rs:
