/root/repo/target/debug/deps/proptest_roundtrip-4220a8f429d935cb.d: crates/htl/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-4220a8f429d935cb: crates/htl/tests/proptest_roundtrip.rs

crates/htl/tests/proptest_roundtrip.rs:
