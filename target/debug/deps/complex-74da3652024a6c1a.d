/root/repo/target/debug/deps/complex-74da3652024a6c1a.d: crates/bench/benches/complex.rs Cargo.toml

/root/repo/target/debug/deps/libcomplex-74da3652024a6c1a.rmeta: crates/bench/benches/complex.rs Cargo.toml

crates/bench/benches/complex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
