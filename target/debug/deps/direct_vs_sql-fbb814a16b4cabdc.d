/root/repo/target/debug/deps/direct_vs_sql-fbb814a16b4cabdc.d: tests/suite/direct_vs_sql.rs Cargo.toml

/root/repo/target/debug/deps/libdirect_vs_sql-fbb814a16b4cabdc.rmeta: tests/suite/direct_vs_sql.rs Cargo.toml

tests/suite/direct_vs_sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
