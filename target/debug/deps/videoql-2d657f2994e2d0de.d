/root/repo/target/debug/deps/videoql-2d657f2994e2d0de.d: examples/videoql.rs

/root/repo/target/debug/deps/videoql-2d657f2994e2d0de: examples/videoql.rs

examples/videoql.rs:
