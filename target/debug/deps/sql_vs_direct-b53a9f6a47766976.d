/root/repo/target/debug/deps/sql_vs_direct-b53a9f6a47766976.d: examples/sql_vs_direct.rs

/root/repo/target/debug/deps/sql_vs_direct-b53a9f6a47766976: examples/sql_vs_direct.rs

examples/sql_vs_direct.rs:
