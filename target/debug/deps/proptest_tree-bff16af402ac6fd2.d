/root/repo/target/debug/deps/proptest_tree-bff16af402ac6fd2.d: crates/model/tests/proptest_tree.rs

/root/repo/target/debug/deps/proptest_tree-bff16af402ac6fd2: crates/model/tests/proptest_tree.rs

crates/model/tests/proptest_tree.rs:
