/root/repo/target/debug/deps/complexity-2243e01713c35fa6.d: tests/suite/complexity.rs Cargo.toml

/root/repo/target/debug/deps/libcomplexity-2243e01713c35fa6.rmeta: tests/suite/complexity.rs Cargo.toml

tests/suite/complexity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
