/root/repo/target/debug/deps/proptest_exec-016414c61db7283e.d: crates/relal/tests/proptest_exec.rs

/root/repo/target/debug/deps/proptest_exec-016414c61db7283e: crates/relal/tests/proptest_exec.rs

crates/relal/tests/proptest_exec.rs:
