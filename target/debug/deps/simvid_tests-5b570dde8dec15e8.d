/root/repo/target/debug/deps/simvid_tests-5b570dde8dec15e8.d: tests/src/lib.rs

/root/repo/target/debug/deps/simvid_tests-5b570dde8dec15e8: tests/src/lib.rs

tests/src/lib.rs:
