/root/repo/target/debug/deps/casablanca-10845dcdce3dd49c.d: examples/casablanca.rs

/root/repo/target/debug/deps/casablanca-10845dcdce3dd49c: examples/casablanca.rs

examples/casablanca.rs:
