/root/repo/target/debug/deps/simvid_htl-74968f73835caaa2.d: crates/htl/src/lib.rs crates/htl/src/ast.rs crates/htl/src/atoms.rs crates/htl/src/classify.rs crates/htl/src/error.rs crates/htl/src/exact.rs crates/htl/src/lexer.rs crates/htl/src/normalize.rs crates/htl/src/parser.rs crates/htl/src/print.rs crates/htl/src/vars.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_htl-74968f73835caaa2.rmeta: crates/htl/src/lib.rs crates/htl/src/ast.rs crates/htl/src/atoms.rs crates/htl/src/classify.rs crates/htl/src/error.rs crates/htl/src/exact.rs crates/htl/src/lexer.rs crates/htl/src/normalize.rs crates/htl/src/parser.rs crates/htl/src/print.rs crates/htl/src/vars.rs Cargo.toml

crates/htl/src/lib.rs:
crates/htl/src/ast.rs:
crates/htl/src/atoms.rs:
crates/htl/src/classify.rs:
crates/htl/src/error.rs:
crates/htl/src/exact.rs:
crates/htl/src/lexer.rs:
crates/htl/src/normalize.rs:
crates/htl/src/parser.rs:
crates/htl/src/print.rs:
crates/htl/src/vars.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
