/root/repo/target/debug/deps/proptest_parser-cb34f43df952b4bc.d: crates/relal/tests/proptest_parser.rs

/root/repo/target/debug/deps/proptest_parser-cb34f43df952b4bc: crates/relal/tests/proptest_parser.rs

crates/relal/tests/proptest_parser.rs:
