/root/repo/target/debug/deps/simvid_relal-69fb9771df99c1f4.d: crates/relal/src/lib.rs crates/relal/src/ast.rs crates/relal/src/catalog.rs crates/relal/src/db.rs crates/relal/src/error.rs crates/relal/src/exec.rs crates/relal/src/expr.rs crates/relal/src/lexer.rs crates/relal/src/parser.rs crates/relal/src/schema.rs crates/relal/src/table.rs crates/relal/src/translate.rs crates/relal/src/translate_table.rs crates/relal/src/value.rs

/root/repo/target/debug/deps/libsimvid_relal-69fb9771df99c1f4.rmeta: crates/relal/src/lib.rs crates/relal/src/ast.rs crates/relal/src/catalog.rs crates/relal/src/db.rs crates/relal/src/error.rs crates/relal/src/exec.rs crates/relal/src/expr.rs crates/relal/src/lexer.rs crates/relal/src/parser.rs crates/relal/src/schema.rs crates/relal/src/table.rs crates/relal/src/translate.rs crates/relal/src/translate_table.rs crates/relal/src/value.rs

crates/relal/src/lib.rs:
crates/relal/src/ast.rs:
crates/relal/src/catalog.rs:
crates/relal/src/db.rs:
crates/relal/src/error.rs:
crates/relal/src/exec.rs:
crates/relal/src/expr.rs:
crates/relal/src/lexer.rs:
crates/relal/src/parser.rs:
crates/relal/src/schema.rs:
crates/relal/src/table.rs:
crates/relal/src/translate.rs:
crates/relal/src/translate_table.rs:
crates/relal/src/value.rs:
