/root/repo/target/debug/deps/airplane-be53a732cc62af7e.d: examples/airplane.rs

/root/repo/target/debug/deps/airplane-be53a732cc62af7e: examples/airplane.rs

examples/airplane.rs:
