/root/repo/target/debug/deps/pruning-b97b90e1577738c2.d: tests/suite/pruning.rs

/root/repo/target/debug/deps/pruning-b97b90e1577738c2: tests/suite/pruning.rs

tests/suite/pruning.rs:
