/root/repo/target/debug/deps/videoql-42cbb989517583a8.d: examples/videoql.rs Cargo.toml

/root/repo/target/debug/deps/libvideoql-42cbb989517583a8.rmeta: examples/videoql.rs Cargo.toml

examples/videoql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
