/root/repo/target/debug/deps/simvid_bench-43e2be2ed4bae1a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/simvid_bench-43e2be2ed4bae1a4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
