/root/repo/target/debug/deps/proptest_parser-5ab0aa924fc21d84.d: crates/relal/tests/proptest_parser.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_parser-5ab0aa924fc21d84.rmeta: crates/relal/tests/proptest_parser.rs Cargo.toml

crates/relal/tests/proptest_parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
