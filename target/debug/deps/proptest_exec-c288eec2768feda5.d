/root/repo/target/debug/deps/proptest_exec-c288eec2768feda5.d: crates/relal/tests/proptest_exec.rs

/root/repo/target/debug/deps/proptest_exec-c288eec2768feda5: crates/relal/tests/proptest_exec.rs

crates/relal/tests/proptest_exec.rs:
