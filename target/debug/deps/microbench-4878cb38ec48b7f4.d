/root/repo/target/debug/deps/microbench-4878cb38ec48b7f4.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-4878cb38ec48b7f4: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
