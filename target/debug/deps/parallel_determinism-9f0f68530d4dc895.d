/root/repo/target/debug/deps/parallel_determinism-9f0f68530d4dc895.d: tests/suite/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-9f0f68530d4dc895: tests/suite/parallel_determinism.rs

tests/suite/parallel_determinism.rs:
