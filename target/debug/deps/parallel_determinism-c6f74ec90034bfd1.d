/root/repo/target/debug/deps/parallel_determinism-c6f74ec90034bfd1.d: tests/suite/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-c6f74ec90034bfd1: tests/suite/parallel_determinism.rs

tests/suite/parallel_determinism.rs:
