/root/repo/target/debug/deps/simvid_picture-9719fe3b6cb16da9.d: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_picture-9719fe3b6cb16da9.rmeta: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs Cargo.toml

crates/picture/src/lib.rs:
crates/picture/src/cache.rs:
crates/picture/src/config.rs:
crates/picture/src/index.rs:
crates/picture/src/provider.rs:
crates/picture/src/query.rs:
crates/picture/src/score.rs:
crates/picture/src/video_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
