/root/repo/target/debug/deps/proptest_roundtrip-8139dd3ae33cb3ff.d: crates/htl/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-8139dd3ae33cb3ff.rmeta: crates/htl/tests/proptest_roundtrip.rs Cargo.toml

crates/htl/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
