/root/repo/target/debug/deps/simvid_core-c408891778e441cb.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_core-c408891778e441cb.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/interval.rs:
crates/core/src/list.rs:
crates/core/src/memo.rs:
crates/core/src/prune.rs:
crates/core/src/range.rs:
crates/core/src/sim.rs:
crates/core/src/table.rs:
crates/core/src/topk.rs:
crates/core/src/valuetable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
