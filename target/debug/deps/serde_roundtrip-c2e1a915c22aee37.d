/root/repo/target/debug/deps/serde_roundtrip-c2e1a915c22aee37.d: crates/model/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-c2e1a915c22aee37: crates/model/tests/serde_roundtrip.rs

crates/model/tests/serde_roundtrip.rs:
