/root/repo/target/debug/deps/conjunction-8d157c2abbb7e1e2.d: crates/bench/benches/conjunction.rs

/root/repo/target/debug/deps/conjunction-8d157c2abbb7e1e2: crates/bench/benches/conjunction.rs

crates/bench/benches/conjunction.rs:
