/root/repo/target/debug/deps/airplane-0406f36452b3e1d3.d: examples/airplane.rs Cargo.toml

/root/repo/target/debug/deps/libairplane-0406f36452b3e1d3.rmeta: examples/airplane.rs Cargo.toml

examples/airplane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
