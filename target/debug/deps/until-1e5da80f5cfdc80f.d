/root/repo/target/debug/deps/until-1e5da80f5cfdc80f.d: crates/bench/benches/until.rs Cargo.toml

/root/repo/target/debug/deps/libuntil-1e5da80f5cfdc80f.rmeta: crates/bench/benches/until.rs Cargo.toml

crates/bench/benches/until.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
