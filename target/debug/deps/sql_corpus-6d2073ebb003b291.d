/root/repo/target/debug/deps/sql_corpus-6d2073ebb003b291.d: crates/relal/tests/sql_corpus.rs Cargo.toml

/root/repo/target/debug/deps/libsql_corpus-6d2073ebb003b291.rmeta: crates/relal/tests/sql_corpus.rs Cargo.toml

crates/relal/tests/sql_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
