/root/repo/target/debug/deps/gulf_war-1fd146a49b54085e.d: examples/gulf_war.rs Cargo.toml

/root/repo/target/debug/deps/libgulf_war-1fd146a49b54085e.rmeta: examples/gulf_war.rs Cargo.toml

examples/gulf_war.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
