/root/repo/target/debug/deps/simvid_model-f86832c9a721bade.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

/root/repo/target/debug/deps/libsimvid_model-f86832c9a721bade.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/meta.rs:
crates/model/src/object.rs:
crates/model/src/store.rs:
crates/model/src/tree.rs:
crates/model/src/value.rs:
