/root/repo/target/debug/deps/proptest_roundtrip-3bd8519c5e5fe742.d: crates/htl/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-3bd8519c5e5fe742: crates/htl/tests/proptest_roundtrip.rs

crates/htl/tests/proptest_roundtrip.rs:
