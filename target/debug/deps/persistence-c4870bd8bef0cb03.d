/root/repo/target/debug/deps/persistence-c4870bd8bef0cb03.d: tests/suite/persistence.rs

/root/repo/target/debug/deps/persistence-c4870bd8bef0cb03: tests/suite/persistence.rs

tests/suite/persistence.rs:
