/root/repo/target/debug/deps/complex-77203bc1757af540.d: crates/bench/benches/complex.rs

/root/repo/target/debug/deps/complex-77203bc1757af540: crates/bench/benches/complex.rs

crates/bench/benches/complex.rs:
