/root/repo/target/debug/deps/proptest_normalize-05f7bd1e90238a2c.d: crates/htl/tests/proptest_normalize.rs

/root/repo/target/debug/deps/proptest_normalize-05f7bd1e90238a2c: crates/htl/tests/proptest_normalize.rs

crates/htl/tests/proptest_normalize.rs:
