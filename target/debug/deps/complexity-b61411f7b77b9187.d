/root/repo/target/debug/deps/complexity-b61411f7b77b9187.d: tests/suite/complexity.rs

/root/repo/target/debug/deps/complexity-b61411f7b77b9187: tests/suite/complexity.rs

tests/suite/complexity.rs:
