/root/repo/target/debug/deps/casablanca-ad0b0a8738f42334.d: examples/casablanca.rs Cargo.toml

/root/repo/target/debug/deps/libcasablanca-ad0b0a8738f42334.rmeta: examples/casablanca.rs Cargo.toml

examples/casablanca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
