/root/repo/target/debug/deps/complexity-5973ed86b894f89f.d: tests/suite/complexity.rs

/root/repo/target/debug/deps/complexity-5973ed86b894f89f: tests/suite/complexity.rs

tests/suite/complexity.rs:
