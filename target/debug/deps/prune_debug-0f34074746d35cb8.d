/root/repo/target/debug/deps/prune_debug-0f34074746d35cb8.d: crates/bench/tests/prune_debug.rs

/root/repo/target/debug/deps/prune_debug-0f34074746d35cb8: crates/bench/tests/prune_debug.rs

crates/bench/tests/prune_debug.rs:
