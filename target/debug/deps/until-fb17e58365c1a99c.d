/root/repo/target/debug/deps/until-fb17e58365c1a99c.d: crates/bench/benches/until.rs

/root/repo/target/debug/deps/until-fb17e58365c1a99c: crates/bench/benches/until.rs

crates/bench/benches/until.rs:
