/root/repo/target/debug/deps/simvid_picture-6c10a657cdbfd3c5.d: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

/root/repo/target/debug/deps/libsimvid_picture-6c10a657cdbfd3c5.rlib: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

/root/repo/target/debug/deps/libsimvid_picture-6c10a657cdbfd3c5.rmeta: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

crates/picture/src/lib.rs:
crates/picture/src/cache.rs:
crates/picture/src/config.rs:
crates/picture/src/index.rs:
crates/picture/src/provider.rs:
crates/picture/src/query.rs:
crates/picture/src/score.rs:
crates/picture/src/video_db.rs:
