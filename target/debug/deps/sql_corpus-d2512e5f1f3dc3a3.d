/root/repo/target/debug/deps/sql_corpus-d2512e5f1f3dc3a3.d: crates/relal/tests/sql_corpus.rs

/root/repo/target/debug/deps/sql_corpus-d2512e5f1f3dc3a3: crates/relal/tests/sql_corpus.rs

crates/relal/tests/sql_corpus.rs:
