/root/repo/target/debug/deps/casablanca-05a7012690219bf3.d: examples/casablanca.rs

/root/repo/target/debug/deps/casablanca-05a7012690219bf3: examples/casablanca.rs

examples/casablanca.rs:
