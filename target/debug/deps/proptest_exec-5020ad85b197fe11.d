/root/repo/target/debug/deps/proptest_exec-5020ad85b197fe11.d: crates/relal/tests/proptest_exec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_exec-5020ad85b197fe11.rmeta: crates/relal/tests/proptest_exec.rs Cargo.toml

crates/relal/tests/proptest_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
