/root/repo/target/debug/deps/persistence-ee190a02f7e7e18a.d: tests/suite/persistence.rs

/root/repo/target/debug/deps/persistence-ee190a02f7e7e18a: tests/suite/persistence.rs

tests/suite/persistence.rs:
