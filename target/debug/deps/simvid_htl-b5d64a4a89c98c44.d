/root/repo/target/debug/deps/simvid_htl-b5d64a4a89c98c44.d: crates/htl/src/lib.rs crates/htl/src/ast.rs crates/htl/src/atoms.rs crates/htl/src/classify.rs crates/htl/src/error.rs crates/htl/src/exact.rs crates/htl/src/lexer.rs crates/htl/src/normalize.rs crates/htl/src/parser.rs crates/htl/src/print.rs crates/htl/src/vars.rs

/root/repo/target/debug/deps/libsimvid_htl-b5d64a4a89c98c44.rmeta: crates/htl/src/lib.rs crates/htl/src/ast.rs crates/htl/src/atoms.rs crates/htl/src/classify.rs crates/htl/src/error.rs crates/htl/src/exact.rs crates/htl/src/lexer.rs crates/htl/src/normalize.rs crates/htl/src/parser.rs crates/htl/src/print.rs crates/htl/src/vars.rs

crates/htl/src/lib.rs:
crates/htl/src/ast.rs:
crates/htl/src/atoms.rs:
crates/htl/src/classify.rs:
crates/htl/src/error.rs:
crates/htl/src/exact.rs:
crates/htl/src/lexer.rs:
crates/htl/src/normalize.rs:
crates/htl/src/parser.rs:
crates/htl/src/print.rs:
crates/htl/src/vars.rs:
