/root/repo/target/debug/deps/simvid_examples-48928a20ff78f70f.d: examples/src/lib.rs

/root/repo/target/debug/deps/libsimvid_examples-48928a20ff78f70f.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libsimvid_examples-48928a20ff78f70f.rmeta: examples/src/lib.rs

examples/src/lib.rs:
