/root/repo/target/debug/deps/pruning-897cec6a58521b2f.d: tests/suite/pruning.rs Cargo.toml

/root/repo/target/debug/deps/libpruning-897cec6a58521b2f.rmeta: tests/suite/pruning.rs Cargo.toml

tests/suite/pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
