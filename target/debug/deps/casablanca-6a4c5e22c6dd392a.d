/root/repo/target/debug/deps/casablanca-6a4c5e22c6dd392a.d: examples/casablanca.rs Cargo.toml

/root/repo/target/debug/deps/libcasablanca-6a4c5e22c6dd392a.rmeta: examples/casablanca.rs Cargo.toml

examples/casablanca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
