/root/repo/target/debug/deps/complex-037334fbca4ab0d7.d: crates/bench/benches/complex.rs

/root/repo/target/debug/deps/complex-037334fbca4ab0d7: crates/bench/benches/complex.rs

crates/bench/benches/complex.rs:
