/root/repo/target/debug/deps/conjunction-4d2dee403c4f41a5.d: crates/bench/benches/conjunction.rs Cargo.toml

/root/repo/target/debug/deps/libconjunction-4d2dee403c4f41a5.rmeta: crates/bench/benches/conjunction.rs Cargo.toml

crates/bench/benches/conjunction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
