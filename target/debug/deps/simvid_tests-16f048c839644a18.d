/root/repo/target/debug/deps/simvid_tests-16f048c839644a18.d: tests/src/lib.rs

/root/repo/target/debug/deps/simvid_tests-16f048c839644a18: tests/src/lib.rs

tests/src/lib.rs:
