/root/repo/target/debug/deps/end_to_end-c2d08f854383754a.d: tests/suite/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c2d08f854383754a: tests/suite/end_to_end.rs

tests/suite/end_to_end.rs:
