/root/repo/target/debug/deps/sql_vs_direct-035845f427bda296.d: examples/sql_vs_direct.rs

/root/repo/target/debug/deps/sql_vs_direct-035845f427bda296: examples/sql_vs_direct.rs

examples/sql_vs_direct.rs:
