/root/repo/target/debug/deps/sql_type2-041c2217ba9b2e6d.d: tests/suite/sql_type2.rs

/root/repo/target/debug/deps/sql_type2-041c2217ba9b2e6d: tests/suite/sql_type2.rs

tests/suite/sql_type2.rs:
