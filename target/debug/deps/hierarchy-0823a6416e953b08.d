/root/repo/target/debug/deps/hierarchy-0823a6416e953b08.d: tests/suite/hierarchy.rs

/root/repo/target/debug/deps/hierarchy-0823a6416e953b08: tests/suite/hierarchy.rs

tests/suite/hierarchy.rs:
