/root/repo/target/debug/deps/simvid_workload-1d7039dd7bc2b146.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs

/root/repo/target/debug/deps/simvid_workload-1d7039dd7bc2b146: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
