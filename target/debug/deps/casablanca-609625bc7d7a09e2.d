/root/repo/target/debug/deps/casablanca-609625bc7d7a09e2.d: examples/casablanca.rs

/root/repo/target/debug/deps/casablanca-609625bc7d7a09e2: examples/casablanca.rs

examples/casablanca.rs:
