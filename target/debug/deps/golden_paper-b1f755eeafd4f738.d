/root/repo/target/debug/deps/golden_paper-b1f755eeafd4f738.d: tests/suite/golden_paper.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_paper-b1f755eeafd4f738.rmeta: tests/suite/golden_paper.rs Cargo.toml

tests/suite/golden_paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
