/root/repo/target/debug/deps/proptest_type2-f4faf70523838b5f.d: crates/relal/tests/proptest_type2.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_type2-f4faf70523838b5f.rmeta: crates/relal/tests/proptest_type2.rs Cargo.toml

crates/relal/tests/proptest_type2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
