/root/repo/target/debug/deps/quickstart-b23b0e0de43e4b7e.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-b23b0e0de43e4b7e: examples/quickstart.rs

examples/quickstart.rs:
