/root/repo/target/debug/deps/microbench-98ef218d186f2c3a.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/microbench-98ef218d186f2c3a: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
