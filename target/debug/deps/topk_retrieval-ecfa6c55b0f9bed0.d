/root/repo/target/debug/deps/topk_retrieval-ecfa6c55b0f9bed0.d: tests/suite/topk_retrieval.rs

/root/repo/target/debug/deps/topk_retrieval-ecfa6c55b0f9bed0: tests/suite/topk_retrieval.rs

tests/suite/topk_retrieval.rs:
