/root/repo/target/debug/deps/simvid_core-4757cc61b61c0cba.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

/root/repo/target/debug/deps/libsimvid_core-4757cc61b61c0cba.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

/root/repo/target/debug/deps/libsimvid_core-4757cc61b61c0cba.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/interval.rs:
crates/core/src/list.rs:
crates/core/src/memo.rs:
crates/core/src/prune.rs:
crates/core/src/range.rs:
crates/core/src/sim.rs:
crates/core/src/table.rs:
crates/core/src/topk.rs:
crates/core/src/valuetable.rs:
