/root/repo/target/debug/deps/gulf_war-65d6599a78023940.d: examples/gulf_war.rs

/root/repo/target/debug/deps/gulf_war-65d6599a78023940: examples/gulf_war.rs

examples/gulf_war.rs:
