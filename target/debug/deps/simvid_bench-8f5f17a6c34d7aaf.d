/root/repo/target/debug/deps/simvid_bench-8f5f17a6c34d7aaf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsimvid_bench-8f5f17a6c34d7aaf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsimvid_bench-8f5f17a6c34d7aaf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
