/root/repo/target/debug/deps/hierarchy-f78b0dfb10a047dd.d: tests/suite/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy-f78b0dfb10a047dd.rmeta: tests/suite/hierarchy.rs Cargo.toml

tests/suite/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
