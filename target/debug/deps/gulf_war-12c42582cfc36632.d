/root/repo/target/debug/deps/gulf_war-12c42582cfc36632.d: examples/gulf_war.rs

/root/repo/target/debug/deps/gulf_war-12c42582cfc36632: examples/gulf_war.rs

examples/gulf_war.rs:
