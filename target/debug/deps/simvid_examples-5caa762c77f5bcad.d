/root/repo/target/debug/deps/simvid_examples-5caa762c77f5bcad.d: examples/src/lib.rs

/root/repo/target/debug/deps/simvid_examples-5caa762c77f5bcad: examples/src/lib.rs

examples/src/lib.rs:
