/root/repo/target/debug/deps/serve-b88a6d64e2d95d78.d: tests/suite/serve.rs

/root/repo/target/debug/deps/serve-b88a6d64e2d95d78: tests/suite/serve.rs

tests/suite/serve.rs:
