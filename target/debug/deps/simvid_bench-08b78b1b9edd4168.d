/root/repo/target/debug/deps/simvid_bench-08b78b1b9edd4168.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_bench-08b78b1b9edd4168.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
