/root/repo/target/debug/deps/repro-b3f65a80fbd74773.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b3f65a80fbd74773: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
