/root/repo/target/debug/deps/videoql-6d64a7acfe8f5676.d: examples/videoql.rs

/root/repo/target/debug/deps/videoql-6d64a7acfe8f5676: examples/videoql.rs

examples/videoql.rs:
