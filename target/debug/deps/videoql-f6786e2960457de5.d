/root/repo/target/debug/deps/videoql-f6786e2960457de5.d: examples/videoql.rs

/root/repo/target/debug/deps/videoql-f6786e2960457de5: examples/videoql.rs

examples/videoql.rs:
