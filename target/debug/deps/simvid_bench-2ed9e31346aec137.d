/root/repo/target/debug/deps/simvid_bench-2ed9e31346aec137.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsimvid_bench-2ed9e31346aec137.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsimvid_bench-2ed9e31346aec137.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
