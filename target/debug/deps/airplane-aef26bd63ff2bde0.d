/root/repo/target/debug/deps/airplane-aef26bd63ff2bde0.d: examples/airplane.rs Cargo.toml

/root/repo/target/debug/deps/libairplane-aef26bd63ff2bde0.rmeta: examples/airplane.rs Cargo.toml

examples/airplane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
