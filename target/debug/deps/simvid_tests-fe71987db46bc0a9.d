/root/repo/target/debug/deps/simvid_tests-fe71987db46bc0a9.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_tests-fe71987db46bc0a9.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
