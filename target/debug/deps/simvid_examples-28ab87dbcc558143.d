/root/repo/target/debug/deps/simvid_examples-28ab87dbcc558143.d: examples/src/lib.rs

/root/repo/target/debug/deps/libsimvid_examples-28ab87dbcc558143.rmeta: examples/src/lib.rs

examples/src/lib.rs:
