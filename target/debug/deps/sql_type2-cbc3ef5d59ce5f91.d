/root/repo/target/debug/deps/sql_type2-cbc3ef5d59ce5f91.d: tests/suite/sql_type2.rs

/root/repo/target/debug/deps/sql_type2-cbc3ef5d59ce5f91: tests/suite/sql_type2.rs

tests/suite/sql_type2.rs:
