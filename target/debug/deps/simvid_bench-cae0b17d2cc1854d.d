/root/repo/target/debug/deps/simvid_bench-cae0b17d2cc1854d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/simvid_bench-cae0b17d2cc1854d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
