/root/repo/target/debug/deps/topk_retrieval-da235bf3c41c1849.d: tests/suite/topk_retrieval.rs Cargo.toml

/root/repo/target/debug/deps/libtopk_retrieval-da235bf3c41c1849.rmeta: tests/suite/topk_retrieval.rs Cargo.toml

tests/suite/topk_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
