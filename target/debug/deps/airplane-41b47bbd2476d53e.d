/root/repo/target/debug/deps/airplane-41b47bbd2476d53e.d: examples/airplane.rs

/root/repo/target/debug/deps/airplane-41b47bbd2476d53e: examples/airplane.rs

examples/airplane.rs:
