/root/repo/target/debug/deps/gulf_war-e20be067dc75826e.d: examples/gulf_war.rs

/root/repo/target/debug/deps/gulf_war-e20be067dc75826e: examples/gulf_war.rs

examples/gulf_war.rs:
