/root/repo/target/debug/deps/simvid_bench-74c9a0e7de7e5a28.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsimvid_bench-74c9a0e7de7e5a28.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
