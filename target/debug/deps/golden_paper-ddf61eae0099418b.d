/root/repo/target/debug/deps/golden_paper-ddf61eae0099418b.d: tests/suite/golden_paper.rs

/root/repo/target/debug/deps/golden_paper-ddf61eae0099418b: tests/suite/golden_paper.rs

tests/suite/golden_paper.rs:
