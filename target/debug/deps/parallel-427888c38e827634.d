/root/repo/target/debug/deps/parallel-427888c38e827634.d: crates/bench/benches/parallel.rs

/root/repo/target/debug/deps/parallel-427888c38e827634: crates/bench/benches/parallel.rs

crates/bench/benches/parallel.rs:
