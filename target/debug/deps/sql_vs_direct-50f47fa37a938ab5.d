/root/repo/target/debug/deps/sql_vs_direct-50f47fa37a938ab5.d: examples/sql_vs_direct.rs

/root/repo/target/debug/deps/sql_vs_direct-50f47fa37a938ab5: examples/sql_vs_direct.rs

examples/sql_vs_direct.rs:
