/root/repo/target/debug/deps/conjunction-2424d5770aa772bb.d: crates/bench/benches/conjunction.rs

/root/repo/target/debug/deps/conjunction-2424d5770aa772bb: crates/bench/benches/conjunction.rs

crates/bench/benches/conjunction.rs:
