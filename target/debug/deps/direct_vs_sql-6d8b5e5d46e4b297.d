/root/repo/target/debug/deps/direct_vs_sql-6d8b5e5d46e4b297.d: tests/suite/direct_vs_sql.rs

/root/repo/target/debug/deps/direct_vs_sql-6d8b5e5d46e4b297: tests/suite/direct_vs_sql.rs

tests/suite/direct_vs_sql.rs:
