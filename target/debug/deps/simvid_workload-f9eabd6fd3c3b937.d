/root/repo/target/debug/deps/simvid_workload-f9eabd6fd3c3b937.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

/root/repo/target/debug/deps/libsimvid_workload-f9eabd6fd3c3b937.rlib: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

/root/repo/target/debug/deps/libsimvid_workload-f9eabd6fd3c3b937.rmeta: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
crates/workload/src/serve.rs:
