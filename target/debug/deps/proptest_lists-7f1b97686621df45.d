/root/repo/target/debug/deps/proptest_lists-7f1b97686621df45.d: crates/core/tests/proptest_lists.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_lists-7f1b97686621df45.rmeta: crates/core/tests/proptest_lists.rs Cargo.toml

crates/core/tests/proptest_lists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
