/root/repo/target/debug/deps/simvid_workload-46b5940738a0c03c.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_workload-46b5940738a0c03c.rmeta: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
crates/workload/src/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
