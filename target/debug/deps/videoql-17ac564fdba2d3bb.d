/root/repo/target/debug/deps/videoql-17ac564fdba2d3bb.d: examples/videoql.rs Cargo.toml

/root/repo/target/debug/deps/libvideoql-17ac564fdba2d3bb.rmeta: examples/videoql.rs Cargo.toml

examples/videoql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
