/root/repo/target/debug/deps/proptest_normalize-5724b1b727204d38.d: crates/htl/tests/proptest_normalize.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_normalize-5724b1b727204d38.rmeta: crates/htl/tests/proptest_normalize.rs Cargo.toml

crates/htl/tests/proptest_normalize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
