/root/repo/target/debug/deps/parallel-4a1c27b58cfc8cd6.d: crates/bench/benches/parallel.rs

/root/repo/target/debug/deps/parallel-4a1c27b58cfc8cd6: crates/bench/benches/parallel.rs

crates/bench/benches/parallel.rs:
