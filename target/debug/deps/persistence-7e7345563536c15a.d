/root/repo/target/debug/deps/persistence-7e7345563536c15a.d: tests/suite/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-7e7345563536c15a.rmeta: tests/suite/persistence.rs Cargo.toml

tests/suite/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
