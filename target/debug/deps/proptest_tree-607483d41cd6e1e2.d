/root/repo/target/debug/deps/proptest_tree-607483d41cd6e1e2.d: crates/model/tests/proptest_tree.rs

/root/repo/target/debug/deps/proptest_tree-607483d41cd6e1e2: crates/model/tests/proptest_tree.rs

crates/model/tests/proptest_tree.rs:
