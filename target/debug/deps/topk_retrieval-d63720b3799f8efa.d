/root/repo/target/debug/deps/topk_retrieval-d63720b3799f8efa.d: tests/suite/topk_retrieval.rs

/root/repo/target/debug/deps/topk_retrieval-d63720b3799f8efa: tests/suite/topk_retrieval.rs

tests/suite/topk_retrieval.rs:
