/root/repo/target/debug/deps/ablation-8cee28bfeac55aa9.d: tests/suite/ablation.rs

/root/repo/target/debug/deps/ablation-8cee28bfeac55aa9: tests/suite/ablation.rs

tests/suite/ablation.rs:
