/root/repo/target/debug/deps/serde_roundtrip-c9b194cc71add06a.d: crates/model/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-c9b194cc71add06a: crates/model/tests/serde_roundtrip.rs

crates/model/tests/serde_roundtrip.rs:
