/root/repo/target/debug/deps/sql_corpus-2265c860169bb465.d: crates/relal/tests/sql_corpus.rs

/root/repo/target/debug/deps/sql_corpus-2265c860169bb465: crates/relal/tests/sql_corpus.rs

crates/relal/tests/sql_corpus.rs:
