/root/repo/target/debug/deps/parallel-b8a74ec3cd89301b.d: crates/bench/benches/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-b8a74ec3cd89301b.rmeta: crates/bench/benches/parallel.rs Cargo.toml

crates/bench/benches/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
