/root/repo/target/debug/deps/quickstart-f3320c40b551957c.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-f3320c40b551957c: examples/quickstart.rs

examples/quickstart.rs:
