/root/repo/target/debug/deps/repro-5a96f647e525fe92.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-5a96f647e525fe92: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
