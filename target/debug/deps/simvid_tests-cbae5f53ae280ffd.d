/root/repo/target/debug/deps/simvid_tests-cbae5f53ae280ffd.d: tests/src/lib.rs

/root/repo/target/debug/deps/libsimvid_tests-cbae5f53ae280ffd.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libsimvid_tests-cbae5f53ae280ffd.rmeta: tests/src/lib.rs

tests/src/lib.rs:
