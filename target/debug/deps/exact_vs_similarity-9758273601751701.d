/root/repo/target/debug/deps/exact_vs_similarity-9758273601751701.d: tests/suite/exact_vs_similarity.rs

/root/repo/target/debug/deps/exact_vs_similarity-9758273601751701: tests/suite/exact_vs_similarity.rs

tests/suite/exact_vs_similarity.rs:
