/root/repo/target/debug/deps/simvid_bench-ab5b9fd5962433dd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimvid_bench-ab5b9fd5962433dd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
