/root/repo/target/debug/deps/end_to_end-26c3c1098268bcc2.d: tests/suite/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-26c3c1098268bcc2: tests/suite/end_to_end.rs

tests/suite/end_to_end.rs:
