/root/repo/target/debug/deps/proptest_lists-24875276e3397952.d: crates/core/tests/proptest_lists.rs

/root/repo/target/debug/deps/proptest_lists-24875276e3397952: crates/core/tests/proptest_lists.rs

crates/core/tests/proptest_lists.rs:
