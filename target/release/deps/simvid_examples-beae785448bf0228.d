/root/repo/target/release/deps/simvid_examples-beae785448bf0228.d: examples/src/lib.rs

/root/repo/target/release/deps/libsimvid_examples-beae785448bf0228.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libsimvid_examples-beae785448bf0228.rmeta: examples/src/lib.rs

examples/src/lib.rs:
