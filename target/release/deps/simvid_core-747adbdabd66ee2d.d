/root/repo/target/release/deps/simvid_core-747adbdabd66ee2d.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

/root/repo/target/release/deps/libsimvid_core-747adbdabd66ee2d.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

/root/repo/target/release/deps/libsimvid_core-747adbdabd66ee2d.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/interval.rs crates/core/src/list.rs crates/core/src/memo.rs crates/core/src/prune.rs crates/core/src/range.rs crates/core/src/sim.rs crates/core/src/table.rs crates/core/src/topk.rs crates/core/src/valuetable.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/interval.rs:
crates/core/src/list.rs:
crates/core/src/memo.rs:
crates/core/src/prune.rs:
crates/core/src/range.rs:
crates/core/src/sim.rs:
crates/core/src/table.rs:
crates/core/src/topk.rs:
crates/core/src/valuetable.rs:
