/root/repo/target/release/deps/airplane-d0f2ad3151c6d846.d: examples/airplane.rs

/root/repo/target/release/deps/airplane-d0f2ad3151c6d846: examples/airplane.rs

examples/airplane.rs:
