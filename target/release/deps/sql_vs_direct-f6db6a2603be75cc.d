/root/repo/target/release/deps/sql_vs_direct-f6db6a2603be75cc.d: examples/sql_vs_direct.rs

/root/repo/target/release/deps/sql_vs_direct-f6db6a2603be75cc: examples/sql_vs_direct.rs

examples/sql_vs_direct.rs:
