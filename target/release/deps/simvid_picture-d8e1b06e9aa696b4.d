/root/repo/target/release/deps/simvid_picture-d8e1b06e9aa696b4.d: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

/root/repo/target/release/deps/libsimvid_picture-d8e1b06e9aa696b4.rlib: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

/root/repo/target/release/deps/libsimvid_picture-d8e1b06e9aa696b4.rmeta: crates/picture/src/lib.rs crates/picture/src/cache.rs crates/picture/src/config.rs crates/picture/src/index.rs crates/picture/src/provider.rs crates/picture/src/query.rs crates/picture/src/score.rs crates/picture/src/video_db.rs

crates/picture/src/lib.rs:
crates/picture/src/cache.rs:
crates/picture/src/config.rs:
crates/picture/src/index.rs:
crates/picture/src/provider.rs:
crates/picture/src/query.rs:
crates/picture/src/score.rs:
crates/picture/src/video_db.rs:
