/root/repo/target/release/deps/quickstart-d3088c1ee170bdf4.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-d3088c1ee170bdf4: examples/quickstart.rs

examples/quickstart.rs:
