/root/repo/target/release/deps/gulf_war-383c52f1eb81aaae.d: examples/gulf_war.rs

/root/repo/target/release/deps/gulf_war-383c52f1eb81aaae: examples/gulf_war.rs

examples/gulf_war.rs:
