/root/repo/target/release/deps/simvid_model-de8c2c14199b759c.d: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

/root/repo/target/release/deps/libsimvid_model-de8c2c14199b759c.rlib: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

/root/repo/target/release/deps/libsimvid_model-de8c2c14199b759c.rmeta: crates/model/src/lib.rs crates/model/src/builder.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/meta.rs crates/model/src/object.rs crates/model/src/store.rs crates/model/src/tree.rs crates/model/src/value.rs

crates/model/src/lib.rs:
crates/model/src/builder.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/meta.rs:
crates/model/src/object.rs:
crates/model/src/store.rs:
crates/model/src/tree.rs:
crates/model/src/value.rs:
