/root/repo/target/release/deps/simvid_tests-df856b09fa230a9b.d: tests/src/lib.rs

/root/repo/target/release/deps/libsimvid_tests-df856b09fa230a9b.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libsimvid_tests-df856b09fa230a9b.rmeta: tests/src/lib.rs

tests/src/lib.rs:
