/root/repo/target/release/deps/videoql-28cad773c5b6152d.d: examples/videoql.rs

/root/repo/target/release/deps/videoql-28cad773c5b6152d: examples/videoql.rs

examples/videoql.rs:
