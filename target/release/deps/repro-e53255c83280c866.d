/root/repo/target/release/deps/repro-e53255c83280c866.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e53255c83280c866: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
