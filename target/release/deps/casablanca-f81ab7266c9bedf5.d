/root/repo/target/release/deps/casablanca-f81ab7266c9bedf5.d: examples/casablanca.rs

/root/repo/target/release/deps/casablanca-f81ab7266c9bedf5: examples/casablanca.rs

examples/casablanca.rs:
