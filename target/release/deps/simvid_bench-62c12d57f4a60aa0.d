/root/repo/target/release/deps/simvid_bench-62c12d57f4a60aa0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsimvid_bench-62c12d57f4a60aa0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsimvid_bench-62c12d57f4a60aa0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
