/root/repo/target/release/deps/simvid_workload-748888c97d632163.d: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

/root/repo/target/release/deps/libsimvid_workload-748888c97d632163.rlib: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

/root/repo/target/release/deps/libsimvid_workload-748888c97d632163.rmeta: crates/workload/src/lib.rs crates/workload/src/casablanca.rs crates/workload/src/gulfwar.rs crates/workload/src/queries.rs crates/workload/src/randomlists.rs crates/workload/src/randomtables.rs crates/workload/src/randomvideo.rs crates/workload/src/serve.rs

crates/workload/src/lib.rs:
crates/workload/src/casablanca.rs:
crates/workload/src/gulfwar.rs:
crates/workload/src/queries.rs:
crates/workload/src/randomlists.rs:
crates/workload/src/randomtables.rs:
crates/workload/src/randomvideo.rs:
crates/workload/src/serve.rs:
