(function() {
    const implementors = Object.fromEntries([["simvid_bench",[["impl AtomicProvider for <a class=\"struct\" href=\"simvid_bench/struct.ListProvider.html\" title=\"struct simvid_bench::ListProvider\">ListProvider</a>",0]]],["simvid_picture",[["impl AtomicProvider for <a class=\"struct\" href=\"simvid_picture/struct.PictureSystem.html\" title=\"struct simvid_picture::PictureSystem\">PictureSystem</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[176,196]}